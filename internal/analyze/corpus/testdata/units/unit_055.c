// difftest corpus unit 055 (GenMiniC seed 56); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x4731e13a;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 3 == 1) { return M0; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x9);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xb1);
	if (state == 0) { state = 1; }
	for (unsigned int i2 = 0; i2 < 7; i2 = i2 + 1) {
		acc = acc * 15 + i2;
		state = state ^ (acc >> 5);
	}
	out = acc ^ state;
	halt();
}
