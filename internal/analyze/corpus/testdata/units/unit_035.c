// difftest corpus unit 035 (GenMiniC seed 36); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x701dfe1;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 4 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 3) * 4 + (acc & 0xffff) / 1;
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 1; n1 = n1 - 1; } }
	acc = (acc % 5) * 4 + (acc & 0xffff) / 8;
	out = acc ^ state;
	halt();
}
