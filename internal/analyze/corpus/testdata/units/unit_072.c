// difftest corpus unit 072 (GenMiniC seed 73); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x965f360b;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 3 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 8) * 9 + (acc & 0xffff) / 6;
	{ unsigned int n1 = 2;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	state = state + (acc & 0x15);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
