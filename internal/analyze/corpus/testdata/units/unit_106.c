// difftest corpus unit 106 (GenMiniC seed 107); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x8c584c8f;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M4; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xc);
	if (state == 0) { state = 1; }
	{ unsigned int n1 = 7;
	while (n1 != 0) { acc = acc + n1 * 1; n1 = n1 - 1; } }
	trigger();
	acc = acc | 0x80000000;
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 12 + i3;
		state = state ^ (acc >> 15);
	}
	out = acc ^ state;
	halt();
}
