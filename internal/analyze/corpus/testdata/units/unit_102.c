// difftest corpus unit 102 (GenMiniC seed 103); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xff0cecde;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 5 == 1) { return M4; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x39);
	if (state == 0) { state = 1; }
	{ unsigned int n1 = 3;
	while (n1 != 0) { acc = acc + n1 * 2; n1 = n1 - 1; } }
	{ unsigned int n2 = 9;
	while (n2 != 0) { acc = acc + n2 * 2; n2 = n2 - 1; } }
	state = state + (acc & 0xe4);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x400;
	out = acc ^ state;
	halt();
}
