// difftest corpus unit 044 (GenMiniC seed 45); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x81e2c303;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 2 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M3) { acc = acc + 29; }
	else { acc = acc ^ 0xf3cd; }
	acc = (acc % 10) * 10 + (acc & 0xffff) / 9;
	state = state + (acc & 0x3);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
