// difftest corpus unit 015 (GenMiniC seed 16); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xc0bdb92c;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M1; }
	if (v % 2 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 2) * 9 + (acc & 0xffff) / 8;
	state = state + (acc & 0xc2);
	if (state == 0) { state = 1; }
	if (classify(acc) == M2) { acc = acc + 148; }
	else { acc = acc ^ 0x7605; }
	out = acc ^ state;
	halt();
}
