// difftest corpus unit 081 (GenMiniC seed 82); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x114950fd;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 6 == 1) { return M0; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 3;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x1000;
	acc = (acc % 2) * 7 + (acc & 0xffff) / 7;
	{ unsigned int n3 = 7;
	while (n3 != 0) { acc = acc + n3 * 7; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
