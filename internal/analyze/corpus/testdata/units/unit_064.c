// difftest corpus unit 064 (GenMiniC seed 65); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xcab58b5d;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M0; }
	if (v % 3 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 7) * 7 + (acc & 0xffff) / 4;
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	if (classify(acc) == M1) { acc = acc + 168; }
	else { acc = acc ^ 0x443a; }
	if (classify(acc) == M3) { acc = acc + 98; }
	else { acc = acc ^ 0xcfe9; }
	out = acc ^ state;
	halt();
}
