// difftest corpus unit 059 (GenMiniC seed 60); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x98f74e62;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 2 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M2) { acc = acc + 59; }
	else { acc = acc ^ 0x2a9b; }
	{ unsigned int n1 = 6;
	while (n1 != 0) { acc = acc + n1 * 5; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 6; i2 = i2 + 1) {
		acc = acc * 14 + i2;
		state = state ^ (acc >> 3);
	}
	out = acc ^ state;
	halt();
}
