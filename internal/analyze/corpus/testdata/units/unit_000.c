// difftest corpus unit 000 (GenMiniC seed 1); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xaa209b8e;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 3 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 6; i0 = i0 + 1) {
		acc = acc * 7 + i0;
		state = state ^ (acc >> 2);
	}
	trigger();
	acc = acc | 0x1000000;
	{ unsigned int n2 = 1;
	while (n2 != 0) { acc = acc + n2 * 7; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
