// difftest corpus unit 053 (GenMiniC seed 54); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x5a554d6;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M5; }
	if (v % 6 == 1) { return M5; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M5) { acc = acc + 33; }
	else { acc = acc ^ 0x2b8b; }
	for (unsigned int i1 = 0; i1 < 7; i1 = i1 + 1) {
		acc = acc * 14 + i1;
		state = state ^ (acc >> 5);
	}
	if (classify(acc) == M0) { acc = acc + 82; }
	else { acc = acc ^ 0xad10; }
	state = state + (acc & 0x52);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x800000;
	trigger();
	acc = acc | 0x800;
	out = acc ^ state;
	halt();
}
