// difftest corpus unit 165 (GenMiniC seed 166); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x84bdc581;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M4; }
	if (v % 5 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xb9);
	if (state == 0) { state = 1; }
	acc = (acc % 5) * 6 + (acc & 0xffff) / 8;
	state = state + (acc & 0x3d);
	if (state == 0) { state = 1; }
	if (classify(acc) == M4) { acc = acc + 92; }
	else { acc = acc ^ 0xf74f; }
	if (classify(acc) == M3) { acc = acc + 90; }
	else { acc = acc ^ 0x7258; }
	out = acc ^ state;
	halt();
}
