// difftest corpus unit 039 (GenMiniC seed 40); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x5391458a;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 6 == 1) { return M3; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x80000000;
	{ unsigned int n1 = 5;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 8; i2 = i2 + 1) {
		acc = acc * 13 + i2;
		state = state ^ (acc >> 8);
	}
	out = acc ^ state;
	halt();
}
