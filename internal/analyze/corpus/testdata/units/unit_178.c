// difftest corpus unit 178 (GenMiniC seed 179); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x50929565;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M2; }
	if (v % 5 == 1) { return M4; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 6;
	while (n0 != 0) { acc = acc + n0 * 2; n0 = n0 - 1; } }
	if (classify(acc) == M1) { acc = acc + 90; }
	else { acc = acc ^ 0xa7ef; }
	{ unsigned int n2 = 9;
	while (n2 != 0) { acc = acc + n2 * 1; n2 = n2 - 1; } }
	state = state + (acc & 0x77);
	if (state == 0) { state = 1; }
	for (unsigned int i4 = 0; i4 < 7; i4 = i4 + 1) {
		acc = acc * 9 + i4;
		state = state ^ (acc >> 12);
	}
	out = acc ^ state;
	halt();
}
