// difftest corpus unit 097 (GenMiniC seed 98); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xc9719a7b;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 4 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 102; }
	else { acc = acc ^ 0x97f5; }
	state = state + (acc & 0x92);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x1000;
	out = acc ^ state;
	halt();
}
