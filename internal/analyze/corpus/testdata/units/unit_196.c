// difftest corpus unit 196 (GenMiniC seed 197); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x4f033a50;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 6 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 41; }
	else { acc = acc ^ 0x4f0e; }
	trigger();
	acc = acc | 0x800;
	if (classify(acc) == M3) { acc = acc + 127; }
	else { acc = acc ^ 0xfe11; }
	{ unsigned int n3 = 1;
	while (n3 != 0) { acc = acc + n3 * 2; n3 = n3 - 1; } }
	{ unsigned int n4 = 1;
	while (n4 != 0) { acc = acc + n4 * 3; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
