// difftest corpus unit 058 (GenMiniC seed 59); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x35516838;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M3; }
	if (v % 6 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 6; i0 = i0 + 1) {
		acc = acc * 9 + i0;
		state = state ^ (acc >> 9);
	}
	if (classify(acc) == M4) { acc = acc + 115; }
	else { acc = acc ^ 0xc826; }
	if (classify(acc) == M3) { acc = acc + 162; }
	else { acc = acc ^ 0x77b1; }
	state = state + (acc & 0xd);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
