// difftest corpus unit 089 (GenMiniC seed 90); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xf1b535d7;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 3 == 1) { return M4; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 7;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	state = state + (acc & 0xf4);
	if (state == 0) { state = 1; }
	for (unsigned int i2 = 0; i2 < 3; i2 = i2 + 1) {
		acc = acc * 4 + i2;
		state = state ^ (acc >> 11);
	}
	out = acc ^ state;
	halt();
}
