// difftest corpus unit 009 (GenMiniC seed 10); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0xecd53e76;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M4; }
	if (v % 5 == 1) { return M4; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 8; i0 = i0 + 1) {
		acc = acc * 10 + i0;
		state = state ^ (acc >> 14);
	}
	state = state + (acc & 0x89);
	if (state == 0) { state = 1; }
	for (unsigned int i2 = 0; i2 < 4; i2 = i2 + 1) {
		acc = acc * 9 + i2;
		state = state ^ (acc >> 1);
	}
	{ unsigned int n3 = 4;
	while (n3 != 0) { acc = acc + n3 * 3; n3 = n3 - 1; } }
	for (unsigned int i4 = 0; i4 < 7; i4 = i4 + 1) {
		acc = acc * 15 + i4;
		state = state ^ (acc >> 11);
	}
	acc = (acc % 9) * 7 + (acc & 0xffff) / 4;
	out = acc ^ state;
	halt();
}
