// difftest corpus unit 084 (GenMiniC seed 85); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xff631e14;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 5 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 6;
	while (n0 != 0) { acc = acc + n0 * 4; n0 = n0 - 1; } }
	for (unsigned int i1 = 0; i1 < 8; i1 = i1 + 1) {
		acc = acc * 3 + i1;
		state = state ^ (acc >> 3);
	}
	{ unsigned int n2 = 9;
	while (n2 != 0) { acc = acc + n2 * 3; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
