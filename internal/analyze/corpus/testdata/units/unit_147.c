// difftest corpus unit 147 (GenMiniC seed 148); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x86d95ca9;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M3; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 7;
	while (n0 != 0) { acc = acc + n0 * 4; n0 = n0 - 1; } }
	state = state + (acc & 0x2a);
	if (state == 0) { state = 1; }
	acc = (acc % 8) * 5 + (acc & 0xffff) / 5;
	state = state + (acc & 0x7e);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
