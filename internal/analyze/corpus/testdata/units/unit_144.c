// difftest corpus unit 144 (GenMiniC seed 145); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x9edb1021;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 6 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 7;
	while (n0 != 0) { acc = acc + n0 * 4; n0 = n0 - 1; } }
	{ unsigned int n1 = 5;
	while (n1 != 0) { acc = acc + n1 * 3; n1 = n1 - 1; } }
	state = state + (acc & 0x25);
	if (state == 0) { state = 1; }
	{ unsigned int n3 = 6;
	while (n3 != 0) { acc = acc + n3 * 4; n3 = n3 - 1; } }
	acc = (acc % 4) * 9 + (acc & 0xffff) / 9;
	out = acc ^ state;
	halt();
}
