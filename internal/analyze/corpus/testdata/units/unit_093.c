// difftest corpus unit 093 (GenMiniC seed 94); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x7a616ceb;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M1; }
	if (v % 2 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 1;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	{ unsigned int n1 = 6;
	while (n1 != 0) { acc = acc + n1 * 2; n1 = n1 - 1; } }
	trigger();
	acc = acc | 0x80;
	out = acc ^ state;
	halt();
}
