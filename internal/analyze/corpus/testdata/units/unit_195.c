// difftest corpus unit 195 (GenMiniC seed 196); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xeb838c37;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 6 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 6;
	while (n0 != 0) { acc = acc + n0 * 7; n0 = n0 - 1; } }
	state = state + (acc & 0x9b);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x2b);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xa3);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
