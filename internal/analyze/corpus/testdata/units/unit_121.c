// difftest corpus unit 121 (GenMiniC seed 122); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x9c876a0d;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 4 == 1) { return M0; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x70);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xcf);
	if (state == 0) { state = 1; }
	{ unsigned int n2 = 7;
	while (n2 != 0) { acc = acc + n2 * 6; n2 = n2 - 1; } }
	trigger();
	acc = acc | 0x80000;
	if (classify(acc) == M2) { acc = acc + 195; }
	else { acc = acc ^ 0xdbc; }
	out = acc ^ state;
	halt();
}
