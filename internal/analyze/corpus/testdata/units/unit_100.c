// difftest corpus unit 100 (GenMiniC seed 101); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xb6ffc1ab;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 5 == 1) { return M3; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 179; }
	else { acc = acc ^ 0x953a; }
	if (classify(acc) == M2) { acc = acc + 99; }
	else { acc = acc ^ 0x2b97; }
	acc = (acc % 9) * 5 + (acc & 0xffff) / 3;
	trigger();
	acc = acc | 0x800000;
	{ unsigned int n4 = 1;
	while (n4 != 0) { acc = acc + n4 * 1; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
