// difftest corpus unit 176 (GenMiniC seed 177); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x498e1337;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M3; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M3) { acc = acc + 12; }
	else { acc = acc ^ 0xdc7f; }
	{ unsigned int n1 = 9;
	while (n1 != 0) { acc = acc + n1 * 5; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 8; i2 = i2 + 1) {
		acc = acc * 13 + i2;
		state = state ^ (acc >> 7);
	}
	for (unsigned int i3 = 0; i3 < 8; i3 = i3 + 1) {
		acc = acc * 13 + i3;
		state = state ^ (acc >> 14);
	}
	if (classify(acc) == M2) { acc = acc + 86; }
	else { acc = acc ^ 0x6af0; }
	out = acc ^ state;
	halt();
}
