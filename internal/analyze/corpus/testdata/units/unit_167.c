// difftest corpus unit 167 (GenMiniC seed 168); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0xcec386c0;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 6 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x77);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x8;
	state = state + (acc & 0xa6);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xdc);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xa6);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
