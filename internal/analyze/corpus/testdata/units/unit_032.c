// difftest corpus unit 032 (GenMiniC seed 33); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x57e1c8f5;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 5 == 1) { return M0; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 3;
	while (n0 != 0) { acc = acc + n0 * 5; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x40;
	{ unsigned int n2 = 4;
	while (n2 != 0) { acc = acc + n2 * 6; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
