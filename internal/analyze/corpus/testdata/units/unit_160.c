// difftest corpus unit 160 (GenMiniC seed 161); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x526bb3a0;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M2; }
	if (v % 5 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 5; i0 = i0 + 1) {
		acc = acc * 10 + i0;
		state = state ^ (acc >> 10);
	}
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	{ unsigned int n2 = 5;
	while (n2 != 0) { acc = acc + n2 * 3; n2 = n2 - 1; } }
	acc = (acc % 5) * 11 + (acc & 0xffff) / 5;
	out = acc ^ state;
	halt();
}
