// difftest corpus unit 116 (GenMiniC seed 117); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xaa27a36a;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 3 == 1) { return M3; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M3) { acc = acc + 124; }
	else { acc = acc ^ 0x8a06; }
	state = state + (acc & 0x73);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x56);
	if (state == 0) { state = 1; }
	for (unsigned int i3 = 0; i3 < 6; i3 = i3 + 1) {
		acc = acc * 11 + i3;
		state = state ^ (acc >> 14);
	}
	out = acc ^ state;
	halt();
}
