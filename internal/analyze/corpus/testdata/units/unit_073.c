// difftest corpus unit 073 (GenMiniC seed 74); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x3564900e;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 3 == 1) { return M5; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 6; i0 = i0 + 1) {
		acc = acc * 4 + i0;
		state = state ^ (acc >> 0);
	}
	if (classify(acc) == M4) { acc = acc + 60; }
	else { acc = acc ^ 0xa1e4; }
	if (classify(acc) == M3) { acc = acc + 113; }
	else { acc = acc ^ 0xa210; }
	trigger();
	acc = acc | 0x100;
	out = acc ^ state;
	halt();
}
