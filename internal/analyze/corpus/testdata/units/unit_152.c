// difftest corpus unit 152 (GenMiniC seed 153); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x76b80aeb;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M4; }
	if (v % 5 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 4;
	while (n0 != 0) { acc = acc + n0 * 6; n0 = n0 - 1; } }
	acc = (acc % 8) * 10 + (acc & 0xffff) / 3;
	{ unsigned int n2 = 7;
	while (n2 != 0) { acc = acc + n2 * 1; n2 = n2 - 1; } }
	for (unsigned int i3 = 0; i3 < 3; i3 = i3 + 1) {
		acc = acc * 6 + i3;
		state = state ^ (acc >> 3);
	}
	acc = (acc % 6) * 6 + (acc & 0xffff) / 1;
	out = acc ^ state;
	halt();
}
