package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"glitchlab/internal/analyze"
	"glitchlab/internal/passes"
	"glitchlab/internal/runctl"
)

// cacheVersion is the on-disk format version; a mismatch discards the
// file wholesale.
const cacheVersion = 1

// cacheEntry is one unit's cached lint: everything path-independent about
// it. The path deliberately stays outside the entry — the key is content
// derived, so a renamed-but-unchanged unit must hit and then be reported
// under its new path. Builds stays raw (pre-marshaled []BuildReport) and
// Summary carries the aggregates, so a warm run splices bytes into the
// report instead of decoding tens of thousands of findings it will only
// re-encode.
type cacheEntry struct {
	Hash    string          `json:"hash"`
	Summary UnitSummary     `json:"summary"`
	Builds  json.RawMessage `json:"builds"`
}

// cacheFile is the persisted cache: a stamp identifying the analysis that
// produced the entries, and the entries keyed by unitKey. The stamp is
// recorded for introspection; correctness does not depend on it, because
// the stamp is also folded into every key — entries from an older rule
// set or option matrix simply never match.
type cacheFile struct {
	Version int                    `json:"version"`
	Stamp   string                 `json:"stamp"`
	Entries map[string]*cacheEntry `json:"entries"`
}

// Stamp fingerprints everything besides unit content that determines a
// unit's findings: the rule-set version, the defense-configuration matrix,
// and the analyzer options. It is half of every cache key, so editing a
// rule (bumping analyze.RulesRevision), changing the matrix, or changing
// analyzer options invalidates exactly the entries produced under the old
// analysis — and nothing else.
func Stamp(rulesVersion string, cfgs []passes.Config, aopts analyze.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "glitchlint-corpus-v%d\x00rules=%s\x00", cacheVersion, rulesVersion)
	for _, c := range cfgs {
		fmt.Fprintf(h, "cfg{%t %t %t %t %t %t sens=%s in=%s out=%s}\x00",
			c.EnumRewrite, c.Returns, c.Integrity, c.Branches, c.Loops, c.Delay,
			strings.Join(c.Sensitive, ","),
			strings.Join(c.DelayOptIn, ","), strings.Join(c.DelayOptOut, ","))
	}
	fmt.Fprintf(h, "opts{sens=%s priv=%s ham=%d dis=%s models=%v}",
		strings.Join(aopts.Sensitive, ","), strings.Join(aopts.Privileged, ","),
		aopts.MinHamming, strings.Join(aopts.Disabled, ","), aopts.Models)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// unitKey is the cache key for one unit: hash(stamp ‖ source). Content
// and analysis version are both in the key, so a stale entry is
// unreachable rather than merely suspect.
func unitKey(stamp string, src []byte) string {
	h := sha256.New()
	io.WriteString(h, stamp)
	h.Write([]byte{0})
	h.Write(src)
	return hex.EncodeToString(h.Sum(nil))
}

// sourceHash is the display hash recorded in unit reports.
func sourceHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// loadCache reads the cache at path. Any problem — missing file, torn
// write survivor, version or stamp drift — yields an empty cache: the
// lint then runs cold, which is always correct.
func loadCache(path, stamp string) map[string]*cacheEntry {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil
	}
	if cf.Version != cacheVersion || cf.Stamp != stamp {
		return nil
	}
	return cf.Entries
}

// saveCache atomically persists the entries under the stamp. Readers never
// observe a partial cache (runctl.WriteFileAtomic), so a lint killed
// mid-save leaves the previous cache intact.
func saveCache(path, stamp string, entries map[string]*cacheEntry) error {
	data, err := json.Marshal(cacheFile{
		Version: cacheVersion, Stamp: stamp, Entries: entries,
	})
	if err != nil {
		return fmt.Errorf("corpus: encode cache: %w", err)
	}
	if err := runctl.WriteFileAtomic(path, data, 0o666); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// JSON renders the report in the documented fleet-report schema with a
// trailing newline, byte-for-byte reproducible for a given corpus and
// option set.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
