package corpus_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"glitchlab/internal/analyze"
	"glitchlab/internal/analyze/corpus"
	"glitchlab/internal/difftest"
	"glitchlab/internal/obs"
)

var updateGolden = flag.Bool("update", false, "regenerate golden files and the committed corpus")

// miniCorpus writes a small seeded corpus into a temp dir.
func miniCorpus(t *testing.T, n int, seed int64) string {
	t.Helper()
	dir := t.TempDir()
	if err := difftest.WriteCorpus(dir, n, seed); err != nil {
		t.Fatal(err)
	}
	return dir
}

// lint runs a corpus lint that must succeed.
func lint(t *testing.T, o corpus.Options) *corpus.Result {
	t.Helper()
	if o.Obs == nil {
		o.Obs = obs.NewRegistry()
	}
	res, err := corpus.Lint(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// reportJSON renders a result's report.
func reportJSON(t *testing.T, res *corpus.Result) []byte {
	t.Helper()
	data, err := res.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLintSerialVsParallelByteIdentical(t *testing.T) {
	dir := miniCorpus(t, 12, 7)
	aopts := analyze.Options{Sensitive: []string{"state"}}
	serial := lint(t, corpus.Options{Root: dir, Analyze: aopts, Workers: 1})
	for _, workers := range []int{2, 4, 32} {
		par := lint(t, corpus.Options{Root: dir, Analyze: aopts, Workers: workers})
		if string(reportJSON(t, serial)) != string(reportJSON(t, par)) {
			t.Fatalf("workers=%d report differs from serial", workers)
		}
	}
}

func TestLintReportShape(t *testing.T) {
	dir := miniCorpus(t, 4, 11)
	res := lint(t, corpus.Options{Root: dir, Analyze: analyze.Options{Sensitive: []string{"state"}}})
	rep := res.Report
	if rep.Totals.Units != 4 {
		t.Fatalf("units = %d, want 4", rep.Totals.Units)
	}
	if rep.Totals.Builds != 4*8 {
		t.Fatalf("builds = %d, want 32 (full defense matrix)", rep.Totals.Builds)
	}
	if rep.Totals.FailedBuilds != 0 {
		t.Fatalf("%d failed builds in a generated corpus", rep.Totals.FailedBuilds)
	}
	if rep.Totals.Unremoved != 0 {
		t.Fatalf("%d audit violations: a defense pass left findings it owns", rep.Totals.Unremoved)
	}
	if rep.Totals.Findings == 0 || rep.Totals.ByRule["GL001"] == 0 {
		t.Fatalf("totals too empty: %+v", rep.Totals)
	}
	for i := range rep.Units {
		u := &rep.Units[i]
		if u.Path != difftest.CorpusUnitName(i) {
			t.Errorf("unit %d path = %q, want %q (sorted walk)", i, u.Path, difftest.CorpusUnitName(i))
		}
		if len(u.Hash) != 64 {
			t.Errorf("unit %d hash = %q, want hex sha256", i, u.Hash)
		}
		builds, err := u.DecodeBuilds()
		if err != nil {
			t.Fatal(err)
		}
		if len(builds) != 8 || u.Summary.Builds != 8 {
			t.Errorf("unit %d has %d builds (summary %d), want 8", i, len(builds), u.Summary.Builds)
		}
		n := 0
		for _, b := range builds {
			n += len(b.Findings)
		}
		if n != u.Summary.Findings {
			t.Errorf("unit %d summary findings = %d, builds carry %d", i, u.Summary.Findings, n)
		}
	}
	if res.Stats.CacheHits != 0 || res.Stats.CacheMisses != 4 {
		t.Errorf("cacheless run stats = %+v, want 0 hits / 4 misses", res.Stats)
	}
}

func TestLintObsCounters(t *testing.T) {
	dir := miniCorpus(t, 3, 3)
	reg := obs.NewRegistry()
	res := lint(t, corpus.Options{Root: dir, Obs: reg,
		Analyze: analyze.Options{Sensitive: []string{"state"}}})
	checks := map[string]uint64{
		"corpus.units_total":        3,
		"corpus.units_linted_total": 3,
		"corpus.cache_hits_total":   0,
		"corpus.cache_misses_total": 3,
		"corpus.builds_total":       24,
		"corpus.findings_total":     uint64(res.Report.Totals.Findings),
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for rule, n := range res.Report.Totals.ByRule {
		if got := reg.Counter("corpus.findings." + rule + "_total").Value(); got != uint64(n) {
			t.Errorf("corpus.findings.%s_total = %d, want %d", rule, got, n)
		}
	}
}

func TestLintEmptyCorpus(t *testing.T) {
	if _, err := corpus.Lint(context.Background(),
		corpus.Options{Root: t.TempDir(), Obs: obs.NewRegistry()}); err == nil {
		t.Fatal("lint of an empty corpus succeeded, want error")
	}
}

// TestCommittedCorpusMatchesGenerator pins the committed corpus to its
// generator: testdata/units must be byte-identical to WriteCorpus(200,
// seed 1). Run with -update to regenerate after a deliberate generator
// change.
func TestCommittedCorpusMatchesGenerator(t *testing.T) {
	dir := filepath.Join("testdata", "units")
	if *updateGolden {
		if err := difftest.WriteCorpus(dir, 200, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		path := filepath.Join(dir, difftest.CorpusUnitName(i))
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to regenerate the corpus)", err)
		}
		if want := difftest.CorpusUnit(1, i); string(got) != string(want) {
			t.Fatalf("%s drifted from GenMiniC(seed 1+%d) (run with -update to regenerate)", path, i)
		}
	}
}

// TestCommittedCorpusTotals is the corpus CI gate: the fleet lint of the
// committed 200-unit corpus must reproduce the expected per-rule totals
// exactly. A diff here means a rule or defense pass changed behavior —
// regenerate with -update only after confirming the change is intended.
func TestCommittedCorpusTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("full 200-unit corpus lint skipped in -short mode (ci.sh gates it end to end)")
	}
	res := lint(t, corpus.Options{
		Root:    filepath.Join("testdata", "units"),
		Analyze: analyze.Options{Sensitive: []string{"state"}},
		Workers: 2,
	})
	// Golden only the totals block: per-finding details are covered by
	// the determinism tests, and a full-report golden would be megabytes.
	data, err := json.MarshalIndent(res.Report.Totals, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "expected_totals.json")
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(data) != string(want) {
		t.Errorf("corpus totals drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to regenerate)",
			data, want)
	}
}
