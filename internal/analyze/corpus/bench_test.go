package corpus_test

import (
	"context"
	"path/filepath"
	"testing"

	"glitchlab/internal/analyze"
	"glitchlab/internal/analyze/corpus"
	"glitchlab/internal/obs"
)

// BenchmarkCorpusLint measures fleet linting of the committed 200-unit
// corpus cold (empty cache: every unit compiles 8 times) and warm (every
// unit a cache hit: hash + decode only). The cold/warm min-of-samples
// ratio is the incremental layer's speedup, recorded in BENCH_lint.json.
func BenchmarkCorpusLint(b *testing.B) {
	root := filepath.Join("testdata", "units")
	opts := func(cache string) corpus.Options {
		return corpus.Options{
			Root:      root,
			Analyze:   analyze.Options{Sensitive: []string{"state"}},
			CachePath: cache,
			Obs:       obs.NewRegistry(),
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := filepath.Join(b.TempDir(), "lint.cache")
			b.StartTimer()
			res, err := corpus.Lint(context.Background(), opts(cache))
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.CacheMisses != 200 {
				b.Fatalf("cold run stats = %+v", res.Stats)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		cache := filepath.Join(b.TempDir(), "lint.cache")
		if _, err := corpus.Lint(context.Background(), opts(cache)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := corpus.Lint(context.Background(), opts(cache))
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.CacheHits != 200 {
				b.Fatalf("warm run stats = %+v", res.Stats)
			}
		}
	})
}
