package corpus_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"glitchlab/internal/analyze"
	"glitchlab/internal/analyze/corpus"
	"glitchlab/internal/obs"
	"glitchlab/internal/runctl"
)

// cachedOpts builds the standard options for cache tests: a fresh cache
// file next to nothing, serial lint, isolated counters.
func cachedOpts(t *testing.T, dir string) corpus.Options {
	t.Helper()
	return corpus.Options{
		Root:      dir,
		Analyze:   analyze.Options{Sensitive: []string{"state"}},
		CachePath: filepath.Join(t.TempDir(), "lint.cache"),
		Obs:       obs.NewRegistry(),
	}
}

func TestCacheWarmRunByteIdentical(t *testing.T) {
	dir := miniCorpus(t, 8, 21)
	o := cachedOpts(t, dir)

	cold := lint(t, o)
	if cold.Stats.CacheMisses != 8 || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold stats = %+v, want 8 misses / 0 hits", cold.Stats)
	}
	warm := lint(t, o)
	if warm.Stats.CacheHits != 8 || warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm stats = %+v, want 8 hits / 0 misses", warm.Stats)
	}
	if string(reportJSON(t, cold)) != string(reportJSON(t, warm)) {
		t.Fatal("warm report differs from cold report")
	}
}

// TestCacheSingleUnitMutation edits one unit out of eight and asserts the
// warm re-lint recompiles exactly that unit — and still matches a cold
// lint of the mutated corpus byte for byte.
func TestCacheSingleUnitMutation(t *testing.T) {
	dir := miniCorpus(t, 8, 33)
	o := cachedOpts(t, dir)
	lint(t, o)

	victim := filepath.Join(dir, "unit_003.c")
	src, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	// A trailing comment changes the content hash without changing any
	// finding, which is exactly what makes stale-entry bugs visible: the
	// unit must re-lint even though its report is unchanged.
	if err := os.WriteFile(victim, append(src, []byte("// mutated\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	warm := lint(t, o)
	if warm.Stats.CacheHits != 7 || warm.Stats.CacheMisses != 1 {
		t.Fatalf("post-mutation stats = %+v, want 7 hits / 1 miss", warm.Stats)
	}

	coldOpts := o
	coldOpts.CachePath = ""
	coldOpts.Obs = obs.NewRegistry()
	cold := lint(t, coldOpts)
	if string(reportJSON(t, warm)) != string(reportJSON(t, cold)) {
		t.Fatal("incremental report differs from a cold lint of the mutated corpus")
	}
}

// TestCacheRuleEditInvalidation proves a rule-set edit busts every cached
// entry: the stamp is folded into each unit key, so entries produced under
// the old rules version are unreachable.
func TestCacheRuleEditInvalidation(t *testing.T) {
	dir := miniCorpus(t, 5, 5)
	o := cachedOpts(t, dir)
	lint(t, o)

	edited := o
	edited.RulesVersion = analyze.RulesVersion() + ";GL999:hypothetical:high"
	edited.Obs = obs.NewRegistry()
	res := lint(t, edited)
	if res.Stats.CacheMisses != 5 || res.Stats.CacheHits != 0 {
		t.Fatalf("stats after rule edit = %+v, want 5 misses / 0 hits", res.Stats)
	}

	// The new stamp's entries replaced the old ones; re-linting under the
	// edited rules is now warm again, and reverting to the original rules
	// is cold again — exactly the right entries were busted each time.
	edited.Obs = obs.NewRegistry()
	if res := lint(t, edited); res.Stats.CacheHits != 5 {
		t.Fatalf("second lint under edited rules = %+v, want 5 hits", res.Stats)
	}
	o.Obs = obs.NewRegistry()
	if res := lint(t, o); res.Stats.CacheMisses != 5 {
		t.Fatalf("lint after reverting rules = %+v, want 5 misses", res.Stats)
	}
}

// TestCacheOptionChangeInvalidation: analyzer options are part of the
// stamp too — a different sensitive-variable set must not reuse findings.
func TestCacheOptionChangeInvalidation(t *testing.T) {
	dir := miniCorpus(t, 4, 9)
	o := cachedOpts(t, dir)
	lint(t, o)

	changed := o
	changed.Analyze = analyze.Options{Sensitive: []string{"state", "out"}}
	changed.Configs = nil // re-derive the matrix from the new options
	changed.Obs = obs.NewRegistry()
	if res := lint(t, changed); res.Stats.CacheMisses != 4 {
		t.Fatalf("stats after option change = %+v, want 4 misses", res.Stats)
	}
}

func TestCacheCorruptFileRunsCold(t *testing.T) {
	dir := miniCorpus(t, 3, 13)
	o := cachedOpts(t, dir)
	lint(t, o)
	if err := os.WriteFile(o.CachePath, []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	o.Obs = obs.NewRegistry()
	res := lint(t, o)
	if res.Stats.CacheMisses != 3 {
		t.Fatalf("stats with corrupt cache = %+v, want 3 misses", res.Stats)
	}
	// The rewritten cache must be healthy again.
	o.Obs = obs.NewRegistry()
	if res := lint(t, o); res.Stats.CacheHits != 3 {
		t.Fatalf("stats after cache rewrite = %+v, want 3 hits", res.Stats)
	}
}

// TestCacheKillResume is the crash-safety property: a lint killed after K
// units keeps those K in the cache, and the resumed run re-lints only the
// remainder while producing the byte-identical full report.
func TestCacheKillResume(t *testing.T) {
	const n, killAfter = 10, 4
	dir := miniCorpus(t, n, 41)
	o := cachedOpts(t, dir)

	coldOpts := o
	coldOpts.CachePath = ""
	coldOpts.Obs = obs.NewRegistry()
	cold := lint(t, coldOpts)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := o
	killed.Progress = func(done, total int) {
		if done == killAfter {
			cancel()
		}
	}
	res, err := corpus.Lint(ctx, killed)
	if !errors.Is(err, runctl.ErrInterrupted) {
		t.Fatalf("interrupted lint error = %v, want runctl.ErrInterrupted", err)
	}
	if res.Report != nil {
		t.Fatal("interrupted lint returned a report")
	}
	if res.Stats.CacheMisses != killAfter {
		t.Fatalf("interrupted stats = %+v, want %d misses", res.Stats, killAfter)
	}

	resumed := o
	resumed.Obs = obs.NewRegistry()
	warm := lint(t, resumed)
	if warm.Stats.CacheHits != killAfter || warm.Stats.CacheMisses != n-killAfter {
		t.Fatalf("resume stats = %+v, want %d hits / %d misses",
			warm.Stats, killAfter, n-killAfter)
	}
	if string(reportJSON(t, warm)) != string(reportJSON(t, cold)) {
		t.Fatal("resumed report differs from an uninterrupted cold lint")
	}
}

// TestCacheRenamedUnitHits: the cache key is content-derived, so a renamed
// but unchanged unit is a hit, reported under its new path.
func TestCacheRenamedUnitHits(t *testing.T) {
	dir := miniCorpus(t, 3, 17)
	o := cachedOpts(t, dir)
	lint(t, o)
	if err := os.Rename(filepath.Join(dir, "unit_001.c"),
		filepath.Join(dir, "zz_renamed.c")); err != nil {
		t.Fatal(err)
	}
	o.Obs = obs.NewRegistry()
	res := lint(t, o)
	if res.Stats.CacheHits != 3 {
		t.Fatalf("stats after rename = %+v, want 3 hits", res.Stats)
	}
	if got := res.Report.Units[2].Path; got != "zz_renamed.c" {
		t.Fatalf("renamed unit reported as %q", got)
	}
}
