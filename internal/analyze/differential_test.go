package analyze_test

import (
	"testing"

	"glitchlab/internal/analyze"
	"glitchlab/internal/core"
	"glitchlab/internal/passes"
)

// TestSecureBootDifferential is the analyzer/defense cross-validation: on
// the unprotected secure-boot loader glitchlint must flag at least four
// distinct vulnerability classes, and on the fully defended build every
// finding a current pass owns must be gone — the analyzer validates the
// passes and vice versa. GL007 (unchecked indirect flow) is the one rule
// allowed to survive: no shipped pass claims it until the CFI passes of
// ROADMAP item 4 land, so its findings document the residual exposure.
func TestSecureBootDifferential(t *testing.T) {
	opts := analyze.Options{Sensitive: core.SecureBootSensitive}

	unprotected, err := core.Compile(core.SecureBootSource, passes.None())
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyze.Run(
		&analyze.Target{Module: unprotected.Module, Image: unprotected.Image}, opts)
	if err != nil {
		t.Fatal(err)
	}
	distinct := res.DistinctRules()
	if len(distinct) < 4 {
		t.Fatalf("unprotected secure boot: %d distinct rules %v, want >= 4\nfindings: %s",
			len(distinct), distinct, res.Summary())
	}
	for _, id := range []string{"GL001", "GL002", "GL004", "GL005", "GL006"} {
		if res.RuleHits()[id] == 0 {
			t.Errorf("unprotected secure boot: expected a %s finding (got %s)",
				id, res.Summary())
		}
	}

	defended, err := core.Compile(core.SecureBootSource,
		passes.All(core.SecureBootSensitive...))
	if err != nil {
		t.Fatal(err)
	}
	res, err = analyze.Run(
		&analyze.Target{Module: defended.Module, Image: defended.Image}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Rule != "GL007" {
			t.Fatalf("fully defended secure boot still has a pass-owned finding: %+v\n(summary: %s)",
				f, res.Summary())
		}
	}
	if res.RuleHits()["GL007"] == 0 {
		t.Error("defended build has no GL007 findings: function epilogues should still be unchecked indirect transfers")
	}
}

// TestSecureBootAudit runs the same comparison through the compile-pipeline
// hook: with every defense enabled, no finding a pass owns may survive it.
func TestSecureBootAudit(t *testing.T) {
	_, audit, err := core.CompileAudited(core.SecureBootSource,
		passes.All(core.SecureBootSensitive...), analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Err(); err != nil {
		t.Fatal(err)
	}
	if len(audit.Pre.Findings) == 0 {
		t.Error("pre-defense audit found nothing on the unprotected lowering")
	}
	for _, f := range audit.Post.Findings {
		if f.Rule != "GL007" {
			t.Errorf("post-defense audit left a pass-owned finding: %+v", f)
		}
	}
}
