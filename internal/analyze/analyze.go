// Package analyze is glitchlint: a static glitch-vulnerability analyzer
// over the IR and the emitted Thumb-16 code. Where the campaign packages
// discover glitchable code shapes dynamically — by exhaustively flipping
// bits and emulating the result — glitchlint recognizes the shapes the
// paper identifies statically (Sections II and VI): single-point-of-failure
// branches, low-Hamming-distance constant sets, fail-open defaults,
// unshadowed sensitive loads, unhardened loop exits, and branch encodings
// one bit flip away from a different control transfer.
//
// Each rule maps to a defense in internal/passes, so the analyzer doubles
// as a correctness oracle for the defenses: a finding produced on the
// unprotected build must disappear once the corresponding pass runs (see
// Unremoved and core.CompileAudited).
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"glitchlab/internal/codegen"
	"glitchlab/internal/ir"
	"glitchlab/internal/mutate"
	"glitchlab/internal/passes"
)

// Severity ranks how directly a finding enables the paper's attack goal.
type Severity uint8

// Severities, least to most severe.
const (
	Info Severity = iota
	Low
	Medium
	High
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return fmt.Sprintf("severity%d", uint8(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the severity from its name, inverting MarshalJSON
// so findings survive a JSON round trip (the corpus cache persists them).
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity parses a severity name as printed by String.
func ParseSeverity(name string) (Severity, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "info":
		return Info, nil
	case "low":
		return Low, nil
	case "medium":
		return Medium, nil
	case "high":
		return High, nil
	}
	return Info, fmt.Errorf("analyze: unknown severity %q", name)
}

// Finding is one glitchable code shape an analysis rule located.
type Finding struct {
	Rule     string   `json:"rule"` // stable rule ID, e.g. "GL001"
	Slug     string   `json:"slug"` // rule slug, e.g. "spof-branch"
	Severity Severity `json:"severity"`
	// Location: Func/Block/Instr for IR-level rules (Instr indexes into
	// the block, -1 when the finding is not tied to one instruction);
	// Addr additionally locates image-level findings in the emitted code.
	Func   string `json:"func,omitempty"`
	Block  string `json:"block,omitempty"`
	Instr  int    `json:"instr"`
	Addr   uint32 `json:"addr,omitempty"`
	Detail string `json:"detail"`         // what was found
	Hint   string `json:"hint,omitempty"` // how to fix it
	// FixedBy names the defense pass that removes this finding (a
	// passes.Config field in lowercase: enums, returns, integrity,
	// branches, loops), or "" when only a source change can.
	FixedBy string `json:"fixed_by,omitempty"`
}

// Location renders the finding's place compactly for human output.
func (f *Finding) Location() string {
	loc := "module"
	switch {
	case f.Func != "" && f.Block != "":
		loc = f.Func + "/" + f.Block
		if f.Instr >= 0 {
			loc = fmt.Sprintf("%s#%d", loc, f.Instr)
		}
	case f.Func != "":
		loc = f.Func
	}
	if f.Addr != 0 {
		loc = fmt.Sprintf("%s@%#x", loc, f.Addr)
	}
	return loc
}

// RuleMeta describes a rule in the registry.
type RuleMeta struct {
	ID       string   `json:"id"`
	Slug     string   `json:"slug"`
	Doc      string   `json:"doc"`
	Severity Severity `json:"severity"`
	// NeedsImage marks instruction-level rules that require assembled
	// Thumb-16 code; they are skipped when the target has no image.
	NeedsImage bool `json:"needs_image"`
	// FixedBy is the default defense pass for the rule's findings.
	FixedBy string `json:"fixed_by,omitempty"`
}

// finding starts a Finding pre-filled from the rule's metadata.
func (m RuleMeta) finding() Finding {
	return Finding{
		Rule: m.ID, Slug: m.Slug, Severity: m.Severity,
		Instr: -1, FixedBy: m.FixedBy,
	}
}

// Rule is one pluggable analysis.
type Rule interface {
	Meta() RuleMeta
	Analyze(t *Target, opts *Options) []Finding
}

// Target is what a rule inspects. Module is required; Image is the
// assembled build of the same module and may be nil, in which case
// image-level rules are skipped.
type Target struct {
	Module *ir.Module
	Image  *codegen.Image
}

// Options tunes the analysis.
type Options struct {
	// Sensitive lists globals whose loads must be integrity-verified, in
	// addition to any the module already marks Sensitive (the same
	// developer configuration the integrity pass takes).
	Sensitive []string
	// Privileged lists callees that represent the attack goal — the
	// paper's "boot the firmware" call. Default: success.
	Privileged []string
	// MinHamming is the minimum acceptable pairwise Hamming distance for
	// security-relevant constant sets. Default 8, the distance the
	// Reed-Solomon coder guarantees.
	MinHamming int
	// Models are the fault models used by image-level reachability rules.
	// Default: AND and OR, the paper's hardware-observed models.
	Models []mutate.Model
	// Disabled skips rules by ID or slug.
	Disabled []string
}

// withDefaults returns a copy with unset fields defaulted.
func (o Options) withDefaults() Options {
	if o.Privileged == nil {
		o.Privileged = []string{"success"}
	}
	if o.MinHamming == 0 {
		o.MinHamming = 8
	}
	if o.Models == nil {
		o.Models = []mutate.Model{mutate.AND, mutate.OR}
	}
	return o
}

// disabled reports whether the options disable the rule.
func (o *Options) disabled(m RuleMeta) bool {
	for _, d := range o.Disabled {
		if d == m.ID || d == m.Slug {
			return true
		}
	}
	return false
}

// Rules returns the registry, ordered by rule ID.
func Rules() []Rule {
	return []Rule{
		spofBranch{},
		lowHamming{},
		failOpen{},
		unshadowedLoad{},
		loopExit{},
		oneFlipBranch{},
		indirectFlow{},
	}
}

// RulesRevision counts behavioral revisions of the rule set. Bump it
// whenever a rule's detection logic changes without changing the registry
// itself — cached corpus findings are keyed on RulesVersion, so the bump is
// what invalidates stale entries.
const RulesRevision = 1

// RulesVersion identifies the analysis the registry performs: the manual
// revision counter plus every rule's identity and severity. Any registry
// change (rule added, removed, reclassified) or an explicit RulesRevision
// bump yields a new version string, which the corpus cache folds into its
// entry keys.
func RulesVersion() string {
	parts := []string{fmt.Sprintf("rev%d", RulesRevision)}
	for _, r := range Rules() {
		m := r.Meta()
		parts = append(parts, m.ID+":"+m.Slug+":"+m.Severity.String())
	}
	return strings.Join(parts, ";")
}

// Result is one analyzer run.
type Result struct {
	Findings []Finding  `json:"findings"`
	Ran      []RuleMeta `json:"rules"`
	// Skipped lists rule IDs not run (disabled, or image-level rules on
	// an image-less target).
	Skipped []string `json:"skipped,omitempty"`
}

// Run executes every registered rule against the target and returns the
// deterministically ordered findings.
func Run(t *Target, opts Options) (*Result, error) {
	if t == nil || t.Module == nil {
		return nil, fmt.Errorf("analyze: target has no module")
	}
	opts = opts.withDefaults()
	res := &Result{}
	for _, r := range Rules() {
		meta := r.Meta()
		if opts.disabled(meta) || (meta.NeedsImage && t.Image == nil) {
			res.Skipped = append(res.Skipped, meta.ID)
			continue
		}
		res.Findings = append(res.Findings, r.Analyze(t, &opts)...)
		res.Ran = append(res.Ran, meta)
	}
	SortFindings(res.Findings)
	return res, nil
}

// SortFindings orders findings deterministically by (rule ID, function,
// block, instruction, address, detail). The key is total over everything a
// rule can emit, so rendered reports and corpus aggregations never depend
// on rule-internal iteration order.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Detail < b.Detail
	})
}

// RuleHits counts findings per rule ID.
func (r *Result) RuleHits() map[string]int {
	hits := make(map[string]int)
	for _, f := range r.Findings {
		hits[f.Rule]++
	}
	return hits
}

// DistinctRules returns the sorted rule IDs with at least one finding.
func (r *Result) DistinctRules() []string {
	hits := r.RuleHits()
	ids := make([]string, 0, len(hits))
	for id := range hits {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// MaxSeverity returns the most severe finding's severity (Info when there
// are none).
func (r *Result) MaxSeverity() Severity {
	max := Info
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// Summary renders per-rule finding counts on one line, e.g.
// "GL001 spof-branch ×3, GL005 unhardened-loop-exit ×1".
func (r *Result) Summary() string {
	if len(r.Findings) == 0 {
		return "no findings"
	}
	hits := r.RuleHits()
	var parts []string
	for _, id := range r.DistinctRules() {
		slug := ""
		for _, f := range r.Findings {
			if f.Rule == id {
				slug = f.Slug
				break
			}
		}
		parts = append(parts, fmt.Sprintf("%s %s ×%d", id, slug, hits[id]))
	}
	return strings.Join(parts, ", ")
}

// JSON renders the result in the documented output schema.
func (r *Result) JSON() ([]byte, error) {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	return json.MarshalIndent(r, "", "  ")
}

// Unremoved returns the findings of a post-instrumentation analysis that an
// enabled defense pass was supposed to remove: each is a defense bug (or a
// shape the pass's documented qualification rules exclude). Findings whose
// FixedBy pass is not enabled are expected to survive and are not
// returned.
func Unremoved(post *Result, cfg passes.Config) []Finding {
	var out []Finding
	for _, f := range post.Findings {
		if passEnabled(cfg, f.FixedBy) {
			out = append(out, f)
		}
	}
	return out
}

// passEnabled maps a FixedBy name to the corresponding Config field.
func passEnabled(cfg passes.Config, name string) bool {
	switch name {
	case "enums":
		return cfg.EnumRewrite
	case "returns":
		return cfg.Returns
	case "integrity":
		return cfg.Integrity
	case "branches":
		return cfg.Branches
	case "loops":
		return cfg.Loops
	case "delay":
		return cfg.Delay
	case "cfi":
		// No CFI pass exists yet (ROADMAP item 4): GL007 findings are
		// never owed by a current defense configuration. When the
		// running-signature/domain-separation passes land, their Config
		// field is checked here and the findings become theirs to remove.
		return false
	}
	return false
}
