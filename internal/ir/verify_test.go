package ir

import (
	"strings"
	"testing"
)

// wellFormed builds a minimal valid module the rejection tests then break.
func wellFormed() *Module {
	f := &Func{Name: "main", NumValues: 1}
	f.AddBlock(&Block{Name: "entry", Instrs: []*Instr{
		{Op: OpConst, Dst: 0, Imm: 1, A: NoValue, B: NoValue},
		{Op: OpRet, A: NoValue},
	}})
	return &Module{Funcs: []*Func{f}}
}

func wantVerifyError(t *testing.T, m *Module, substr string) {
	t.Helper()
	err := m.Verify()
	if err == nil {
		t.Fatalf("Verify accepted a module that should fail with %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Verify error = %q, want it to mention %q", err, substr)
	}
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	if err := wellFormed().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsMissingTerminator(t *testing.T) {
	m := wellFormed()
	b := m.Funcs[0].Blocks[0]
	b.Instrs = b.Instrs[:1] // drop the ret: block no longer terminates
	wantVerifyError(t, m, "no terminator")
}

func TestVerifyRejectsUndefinedBranchTargets(t *testing.T) {
	m := wellFormed()
	b := m.Funcs[0].Blocks[0]
	b.Instrs[1] = &Instr{Op: OpJmp, Target: "nowhere", A: NoValue}
	wantVerifyError(t, m, `unknown target "nowhere"`)

	m = wellFormed()
	b = m.Funcs[0].Blocks[0]
	b.Instrs[1] = &Instr{Op: OpCondBr, A: 0, TrueBlk: "entry", FalseBlk: "lost"}
	wantVerifyError(t, m, "unknown branch target")
}

func TestVerifyRejectsMissingShadow(t *testing.T) {
	m := wellFormed()
	m.Globals = []*Global{
		{Name: "key", Sensitive: true, Shadow: "__gr_shadow_key"},
	}
	wantVerifyError(t, m, `shadow "__gr_shadow_key" of global "key" does not exist`)
}

func TestVerifyRejectsShadowNotMarked(t *testing.T) {
	m := wellFormed()
	m.Globals = []*Global{
		{Name: "key", Sensitive: true, Shadow: "__gr_shadow_key"},
		{Name: "__gr_shadow_key"}, // exists but lacks IsShadow
	}
	wantVerifyError(t, m, "not marked as a shadow")
}

func TestVerifyRejectsShadowOnInsensitiveGlobal(t *testing.T) {
	m := wellFormed()
	m.Globals = []*Global{
		{Name: "key", Shadow: "__gr_shadow_key"}, // shadowed but not Sensitive
		{Name: "__gr_shadow_key", IsShadow: true},
	}
	wantVerifyError(t, m, "not sensitive")
}

func TestVerifyRejectsOrphanShadow(t *testing.T) {
	m := wellFormed()
	m.Globals = []*Global{
		{Name: "__gr_shadow_key", IsShadow: true}, // no owner references it
	}
	wantVerifyError(t, m, "not paired with a sensitive global")
}

func TestVerifyRejectsChainedShadow(t *testing.T) {
	m := wellFormed()
	m.Globals = []*Global{
		{Name: "key", Sensitive: true, Shadow: "s1"},
		{Name: "s1", IsShadow: true, Shadow: "s2"}, // shadows must not chain
		{Name: "s2", IsShadow: true},
	}
	wantVerifyError(t, m, "has its own shadow")
}

func TestVerifyRejectsSharedShadow(t *testing.T) {
	m := wellFormed()
	m.Globals = []*Global{
		{Name: "a", Sensitive: true, Shadow: "s"},
		{Name: "b", Sensitive: true, Shadow: "s"},
		{Name: "s", IsShadow: true},
	}
	wantVerifyError(t, m, `shadow "s" claimed by both`)
}

func TestVerifyAcceptsIntegrityPairing(t *testing.T) {
	m := wellFormed()
	m.Globals = []*Global{
		{Name: "key", Sensitive: true, Shadow: "__gr_shadow_key"},
		{Name: "__gr_shadow_key", IsShadow: true},
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
