package ir

import (
	"fmt"

	"glitchlab/internal/minic"
)

// Lower translates a checked mini-C program into an IR module.
func Lower(c *minic.Checked) (*Module, error) {
	m := &Module{}
	for _, e := range c.Prog.Enums {
		info := &EnumInfo{Name: e.Name}
		for _, mem := range e.Members {
			info.Members = append(info.Members, mem.Name)
			info.Values = append(info.Values, mem.Value)
		}
		m.Enums = append(m.Enums, info)
	}
	for _, g := range c.Prog.Globals {
		m.Globals = append(m.Globals, &Global{
			Name:     g.Name,
			HasInit:  g.HasInit,
			Init:     c.GlobalInit[g.Name],
			Volatile: g.Volatile,
		})
	}
	for _, fn := range c.Prog.Funcs {
		f, err := lowerFunc(c, fn)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, f)
	}
	return m, m.Verify()
}

type lowerer struct {
	c      *minic.Checked
	f      *Func
	cur    *Block
	nBlock int
	// scope stack mapping local names to slots.
	scopes []map[string]int
	// loop stack for break/continue.
	loops []loopCtx
}

type loopCtx struct {
	continueTo string
	breakTo    string
}

func lowerFunc(c *minic.Checked, fn *minic.FuncDecl) (*Func, error) {
	f := &Func{
		Name:          fn.Name,
		Params:        len(fn.Params),
		ReturnsVal:    fn.ReturnsVal,
		VolatileSlots: map[int]bool{},
	}
	lo := &lowerer{c: c, f: f}
	lo.pushScope()
	for _, p := range fn.Params {
		lo.scopes[0][p] = f.NewSlot()
	}
	entry := lo.newBlock("entry")
	lo.cur = entry
	if err := lo.block(fn.Body); err != nil {
		return nil, err
	}
	// Fall-through at the end of the function body returns.
	if lo.cur.Term() == nil {
		ret := &Instr{Op: OpRet, A: NoValue}
		if fn.ReturnsVal {
			z := lo.emitConst(0)
			ret.A = z
		}
		lo.emit(ret)
	}
	return f, nil
}

func (lo *lowerer) pushScope() { lo.scopes = append(lo.scopes, map[string]int{}) }
func (lo *lowerer) popScope()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) lookupSlot(name string) (int, bool) {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if s, ok := lo.scopes[i][name]; ok {
			return s, true
		}
	}
	return 0, false
}

func (lo *lowerer) newBlock(hint string) *Block {
	name := hint
	if name != "entry" {
		name = fmt.Sprintf("%s%d", hint, lo.nBlock)
		lo.nBlock++
	}
	b := &Block{Name: name}
	lo.f.AddBlock(b)
	return b
}

func (lo *lowerer) emit(in *Instr) {
	lo.cur.Instrs = append(lo.cur.Instrs, in)
}

func (lo *lowerer) emitConst(v uint32) Value {
	dst := lo.f.NewValue()
	lo.emit(&Instr{Op: OpConst, Dst: dst, Imm: v, A: NoValue, B: NoValue})
	return dst
}

// seal jumps to next if the current block is not already terminated, then
// makes next current.
func (lo *lowerer) seal(next *Block) {
	if lo.cur.Term() == nil {
		lo.emit(&Instr{Op: OpJmp, Target: next.Name, A: NoValue})
	}
	lo.cur = next
}

func (lo *lowerer) block(b *minic.BlockStmt) error {
	lo.pushScope()
	defer lo.popScope()
	for _, st := range b.Stmts {
		if err := lo.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) stmt(st minic.Stmt) error {
	switch t := st.(type) {
	case *minic.BlockStmt:
		return lo.block(t)
	case *minic.DeclStmt:
		slot := lo.f.NewSlot()
		lo.scopes[len(lo.scopes)-1][t.Name] = slot
		if t.Volatile {
			lo.f.VolatileSlots[slot] = true
		}
		if t.HasInit {
			v, err := lo.expr(t.Init)
			if err != nil {
				return err
			}
			lo.emit(&Instr{Op: OpStoreSlot, Slot: slot, A: v, Dst: NoValue, B: NoValue})
		}
		return nil
	case *minic.ExprStmt:
		_, err := lo.exprOrVoidCall(t.X)
		return err
	case *minic.AssignStmt:
		v, err := lo.expr(t.X)
		if err != nil {
			return err
		}
		if slot, ok := lo.lookupSlot(t.Name); ok {
			lo.emit(&Instr{Op: OpStoreSlot, Slot: slot, A: v, Dst: NoValue, B: NoValue})
			return nil
		}
		g, ok := lo.c.Globals[t.Name]
		if !ok {
			return fmt.Errorf("ir: assignment to unknown %q", t.Name)
		}
		lo.emit(&Instr{
			Op: OpStoreG, GName: t.Name, A: v,
			Volatile: g.Volatile, Dst: NoValue, B: NoValue,
		})
		return nil
	case *minic.IfStmt:
		cond, err := lo.expr(t.Cond)
		if err != nil {
			return err
		}
		then := lo.newBlock("then")
		join := lo.newBlock("join")
		elseBlk := join
		if t.Else != nil {
			elseBlk = lo.newBlock("else")
		}
		lo.emit(&Instr{
			Op: OpCondBr, A: cond,
			TrueBlk: then.Name, FalseBlk: elseBlk.Name, Dst: NoValue, B: NoValue,
		})
		lo.cur = then
		if err := lo.block(t.Then); err != nil {
			return err
		}
		lo.seal(join)
		if t.Else != nil {
			lo.cur = elseBlk
			if err := lo.block(t.Else); err != nil {
				return err
			}
			lo.seal(join)
		}
		lo.cur = join
		return nil
	case *minic.WhileStmt:
		head := lo.newBlock("loop")
		body := lo.newBlock("body")
		exit := lo.newBlock("exit")
		head.IsLoopHeader = true
		lo.seal(head)
		cond, err := lo.expr(t.Cond)
		if err != nil {
			return err
		}
		lo.emit(&Instr{
			Op: OpCondBr, A: cond,
			TrueBlk: body.Name, FalseBlk: exit.Name, Dst: NoValue, B: NoValue,
		})
		lo.loops = append(lo.loops, loopCtx{continueTo: head.Name, breakTo: exit.Name})
		lo.cur = body
		if err := lo.block(t.Body); err != nil {
			return err
		}
		lo.loops = lo.loops[:len(lo.loops)-1]
		if lo.cur.Term() == nil {
			lo.emit(&Instr{Op: OpJmp, Target: head.Name, A: NoValue})
		}
		lo.cur = exit
		return nil
	case *minic.ForStmt:
		lo.pushScope()
		defer lo.popScope()
		if t.Init != nil {
			if err := lo.stmt(t.Init); err != nil {
				return err
			}
		}
		head := lo.newBlock("for")
		body := lo.newBlock("body")
		post := lo.newBlock("post")
		exit := lo.newBlock("exit")
		head.IsLoopHeader = true
		lo.seal(head)
		if t.Cond != nil {
			cond, err := lo.expr(t.Cond)
			if err != nil {
				return err
			}
			lo.emit(&Instr{
				Op: OpCondBr, A: cond,
				TrueBlk: body.Name, FalseBlk: exit.Name, Dst: NoValue, B: NoValue,
			})
		} else {
			lo.emit(&Instr{Op: OpJmp, Target: body.Name, A: NoValue})
		}
		lo.loops = append(lo.loops, loopCtx{continueTo: post.Name, breakTo: exit.Name})
		lo.cur = body
		if err := lo.block(t.Body); err != nil {
			return err
		}
		lo.loops = lo.loops[:len(lo.loops)-1]
		lo.seal(post)
		if t.Post != nil {
			if err := lo.stmt(t.Post); err != nil {
				return err
			}
		}
		if lo.cur.Term() == nil {
			lo.emit(&Instr{Op: OpJmp, Target: head.Name, A: NoValue})
		}
		lo.cur = exit
		return nil
	case *minic.ReturnStmt:
		ret := &Instr{Op: OpRet, A: NoValue}
		if t.X != nil {
			v, err := lo.expr(t.X)
			if err != nil {
				return err
			}
			ret.A = v
		}
		lo.emit(ret)
		lo.cur = lo.newBlock("dead")
		return nil
	case *minic.BreakStmt:
		ctx := lo.loops[len(lo.loops)-1]
		lo.emit(&Instr{Op: OpJmp, Target: ctx.breakTo, A: NoValue})
		lo.cur = lo.newBlock("dead")
		return nil
	case *minic.ContinueStmt:
		ctx := lo.loops[len(lo.loops)-1]
		lo.emit(&Instr{Op: OpJmp, Target: ctx.continueTo, A: NoValue})
		lo.cur = lo.newBlock("dead")
		return nil
	}
	return fmt.Errorf("ir: unknown statement %T", st)
}

// exprOrVoidCall lowers an expression statement, allowing void calls.
func (lo *lowerer) exprOrVoidCall(x minic.Expr) (Value, error) {
	if call, ok := x.(*minic.CallExpr); ok {
		return lo.call(call, false)
	}
	return lo.expr(x)
}

var binOps = map[string]BinOp{
	"+": BinAdd, "-": BinSub, "*": BinMul, "/": BinDiv, "%": BinRem,
	"&": BinAnd, "|": BinOr, "^": BinXor, "<<": BinShl, ">>": BinShr,
	"==": BinEq, "!=": BinNe, "<": BinLt, ">": BinGt, "<=": BinLe, ">=": BinGe,
}

func (lo *lowerer) expr(x minic.Expr) (Value, error) {
	switch e := x.(type) {
	case *minic.NumExpr:
		return lo.emitConst(e.Val), nil
	case *minic.VarExpr:
		if m, ok := lo.c.EnumMembers[e.Name]; ok {
			return lo.emitConst(m.Value), nil
		}
		if slot, ok := lo.lookupSlot(e.Name); ok {
			dst := lo.f.NewValue()
			lo.emit(&Instr{
				Op: OpLoadSlot, Dst: dst, Slot: slot,
				Volatile: lo.f.VolatileSlots[slot], A: NoValue, B: NoValue,
			})
			return dst, nil
		}
		g, ok := lo.c.Globals[e.Name]
		if !ok {
			return NoValue, fmt.Errorf("ir: unknown identifier %q", e.Name)
		}
		dst := lo.f.NewValue()
		lo.emit(&Instr{
			Op: OpLoadG, Dst: dst, GName: e.Name,
			Volatile: g.Volatile, A: NoValue, B: NoValue,
		})
		return dst, nil
	case *minic.CallExpr:
		return lo.call(e, true)
	case *minic.UnaryExpr:
		v, err := lo.expr(e.X)
		if err != nil {
			return NoValue, err
		}
		dst := lo.f.NewValue()
		switch e.Op {
		case "!":
			lo.emit(&Instr{Op: OpNot, Dst: dst, A: v, B: NoValue})
		case "~":
			ones := lo.emitConst(0xFFFFFFFF)
			lo.emit(&Instr{Op: OpBin, BinOp: BinXor, Dst: dst, A: v, B: ones})
		case "-":
			zero := lo.emitConst(0)
			lo.emit(&Instr{Op: OpBin, BinOp: BinSub, Dst: dst, A: zero, B: v})
		default:
			return NoValue, fmt.Errorf("ir: unknown unary %q", e.Op)
		}
		return dst, nil
	case *minic.BinExpr:
		if e.Op == "&&" || e.Op == "||" {
			return lo.shortCircuit(e)
		}
		l, err := lo.expr(e.L)
		if err != nil {
			return NoValue, err
		}
		r, err := lo.expr(e.R)
		if err != nil {
			return NoValue, err
		}
		op, ok := binOps[e.Op]
		if !ok {
			return NoValue, fmt.Errorf("ir: unknown operator %q", e.Op)
		}
		dst := lo.f.NewValue()
		lo.emit(&Instr{Op: OpBin, BinOp: op, Dst: dst, A: l, B: r})
		return dst, nil
	}
	return NoValue, fmt.Errorf("ir: unknown expression %T", x)
}

// shortCircuit lowers && and || with proper evaluation order, materializing
// the boolean through a slot.
func (lo *lowerer) shortCircuit(e *minic.BinExpr) (Value, error) {
	slot := lo.f.NewSlot()
	l, err := lo.expr(e.L)
	if err != nil {
		return NoValue, err
	}
	lb := lo.f.NewValue()
	lo.emit(&Instr{Op: OpBin, BinOp: BinNe, Dst: lb, A: l, B: lo.emitConst(0)})
	lo.emit(&Instr{Op: OpStoreSlot, Slot: slot, A: lb, Dst: NoValue, B: NoValue})

	evalR := lo.newBlock("sc")
	done := lo.newBlock("scdone")
	if e.Op == "&&" {
		lo.emit(&Instr{
			Op: OpCondBr, A: lb,
			TrueBlk: evalR.Name, FalseBlk: done.Name, Dst: NoValue, B: NoValue,
		})
	} else {
		lo.emit(&Instr{
			Op: OpCondBr, A: lb,
			TrueBlk: done.Name, FalseBlk: evalR.Name, Dst: NoValue, B: NoValue,
		})
	}
	lo.cur = evalR
	r, err := lo.expr(e.R)
	if err != nil {
		return NoValue, err
	}
	rb := lo.f.NewValue()
	lo.emit(&Instr{Op: OpBin, BinOp: BinNe, Dst: rb, A: r, B: lo.emitConst(0)})
	lo.emit(&Instr{Op: OpStoreSlot, Slot: slot, A: rb, Dst: NoValue, B: NoValue})
	lo.seal(done)

	dst := lo.f.NewValue()
	lo.emit(&Instr{Op: OpLoadSlot, Dst: dst, Slot: slot, A: NoValue, B: NoValue})
	return dst, nil
}

func (lo *lowerer) call(e *minic.CallExpr, needValue bool) (Value, error) {
	args := make([]Value, 0, len(e.Args))
	for _, a := range e.Args {
		v, err := lo.expr(a)
		if err != nil {
			return NoValue, err
		}
		args = append(args, v)
	}
	dst := NoValue
	returnsVal := false
	if b, ok := minic.Builtins[e.Name]; ok {
		returnsVal = b.ReturnsVal
	} else if fn, ok := lo.c.Funcs[e.Name]; ok {
		returnsVal = fn.ReturnsVal
	}
	if returnsVal {
		dst = lo.f.NewValue()
	}
	lo.emit(&Instr{Op: OpCall, Dst: dst, Callee: e.Name, Args: args, A: NoValue, B: NoValue})
	if needValue && dst == NoValue {
		return NoValue, fmt.Errorf("ir: void call %q used as value", e.Name)
	}
	return dst, nil
}
