// Package ir defines GlitchResistor's intermediate representation: a small
// CFG-based, register-oriented IR that the defense passes (internal/passes)
// transform and the code generator (internal/codegen) lowers to Thumb-16.
// It plays the role LLVM IR plays for the paper's tool.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a function-local virtual register. NoValue means "none".
type Value int

// NoValue marks an absent operand or result.
const NoValue Value = -1

// Op is an IR operation.
type Op uint8

// IR operations.
const (
	OpConst     Op = iota + 1 // Dst = Imm
	OpLoadSlot                // Dst = slot[Slot]
	OpStoreSlot               // slot[Slot] = A
	OpLoadG                   // Dst = global GName (Volatile honored)
	OpStoreG                  // global GName = A
	OpBin                     // Dst = A <BinOp> B
	OpNot                     // Dst = A == 0 ? 1 : 0 (logical not)
	OpCall                    // Dst (may be NoValue) = Callee(Args...)
	OpRet                     // return A (NoValue for void)
	OpJmp                     // jump Target
	OpCondBr                  // if A != 0 goto TrueBlk else FalseBlk
)

// BinOp is an arithmetic/logical/comparison operator.
type BinOp uint8

// Binary operators. Comparisons produce 0 or 1.
const (
	BinAdd BinOp = iota + 1
	BinSub
	BinMul
	BinDiv // unsigned
	BinRem // unsigned
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr // logical
	BinEq
	BinNe
	BinLt // unsigned
	BinGt
	BinLe
	BinGe
)

var binNames = map[BinOp]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div",
	BinRem: "rem", BinAnd: "and", BinOr: "or", BinXor: "xor",
	BinShl: "shl", BinShr: "shr", BinEq: "eq", BinNe: "ne",
	BinLt: "lt", BinGt: "gt", BinLe: "le", BinGe: "ge",
}

// String returns the operator mnemonic.
func (b BinOp) String() string {
	if s, ok := binNames[b]; ok {
		return s
	}
	return fmt.Sprintf("bin%d", uint8(b))
}

// IsComparison reports whether the operator yields a boolean.
func (b BinOp) IsComparison() bool {
	return b >= BinEq
}

// Negate returns the complementary comparison (eq<->ne, lt<->ge, ...).
// It panics for non-comparisons.
func (b BinOp) Negate() BinOp {
	switch b {
	case BinEq:
		return BinNe
	case BinNe:
		return BinEq
	case BinLt:
		return BinGe
	case BinGe:
		return BinLt
	case BinGt:
		return BinLe
	case BinLe:
		return BinGt
	}
	panic(fmt.Sprintf("ir: Negate(%v)", b))
}

// Swap returns the comparison with operands exchanged (lt<->gt, le<->ge).
func (b BinOp) Swap() BinOp {
	switch b {
	case BinLt:
		return BinGt
	case BinGt:
		return BinLt
	case BinLe:
		return BinGe
	case BinGe:
		return BinLe
	default:
		return b
	}
}

// Instr is one IR instruction.
type Instr struct {
	Op       Op
	Dst      Value
	A, B     Value
	Imm      uint32
	Slot     int
	GName    string
	BinOp    BinOp
	Callee   string
	Args     []Value
	Volatile bool
	// Targets for control flow (block names).
	TrueBlk  string
	FalseBlk string
	Target   string
	// GR marks instructions inserted by a defense pass, so later passes
	// do not re-instrument them.
	GR bool
}

// IsTerminator reports whether the instruction ends a block.
func (i *Instr) IsTerminator() bool {
	return i.Op == OpRet || i.Op == OpJmp || i.Op == OpCondBr
}

// String renders the instruction for dumps and tests.
func (i *Instr) String() string {
	v := func(x Value) string {
		if x == NoValue {
			return "_"
		}
		return fmt.Sprintf("v%d", x)
	}
	switch i.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %#x", v(i.Dst), i.Imm)
	case OpLoadSlot:
		return fmt.Sprintf("%s = slot[%d]", v(i.Dst), i.Slot)
	case OpStoreSlot:
		return fmt.Sprintf("slot[%d] = %s", i.Slot, v(i.A))
	case OpLoadG:
		vol := ""
		if i.Volatile {
			vol = " volatile"
		}
		return fmt.Sprintf("%s = load%s @%s", v(i.Dst), vol, i.GName)
	case OpStoreG:
		vol := ""
		if i.Volatile {
			vol = " volatile"
		}
		return fmt.Sprintf("store%s @%s = %s", vol, i.GName, v(i.A))
	case OpBin:
		return fmt.Sprintf("%s = %s %s, %s", v(i.Dst), i.BinOp, v(i.A), v(i.B))
	case OpNot:
		return fmt.Sprintf("%s = not %s", v(i.Dst), v(i.A))
	case OpCall:
		args := make([]string, len(i.Args))
		for j, a := range i.Args {
			args[j] = v(a)
		}
		return fmt.Sprintf("%s = call %s(%s)", v(i.Dst), i.Callee,
			strings.Join(args, ", "))
	case OpRet:
		return fmt.Sprintf("ret %s", v(i.A))
	case OpJmp:
		return fmt.Sprintf("jmp %s", i.Target)
	case OpCondBr:
		return fmt.Sprintf("br %s ? %s : %s", v(i.A), i.TrueBlk, i.FalseBlk)
	}
	return fmt.Sprintf("op%d", uint8(i.Op))
}

// Block is a basic block: straight-line instructions ending in one
// terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	// IsLoopHeader marks blocks whose conditional branch guards a loop
	// (set by lowering; used by the loop-hardening pass).
	IsLoopHeader bool
}

// Term returns the block terminator, or nil if the block is malformed.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Func is an IR function.
type Func struct {
	Name       string
	Params     int // params arrive in slots 0..Params-1
	ReturnsVal bool
	Blocks     []*Block
	NumSlots   int // local variable slots (params included)
	NumValues  int // virtual registers allocated
	// VolatileSlots marks slots declared volatile: defense passes must
	// not replicate their loads (paper Section VI-B).
	VolatileSlots map[int]bool

	blockIdx map[string]*Block
}

// NewValue allocates a fresh virtual register.
func (f *Func) NewValue() Value {
	v := Value(f.NumValues)
	f.NumValues++
	return v
}

// NewSlot allocates a fresh local slot.
func (f *Func) NewSlot() int {
	s := f.NumSlots
	f.NumSlots++
	return s
}

// Block returns the named block.
func (f *Func) Block(name string) (*Block, bool) {
	if f.blockIdx == nil {
		f.reindex()
	}
	b, ok := f.blockIdx[name]
	return b, ok
}

// Reindex rebuilds the block name index after direct manipulation of the
// Blocks slice (passes that insert blocks mid-list use this).
func (f *Func) Reindex() { f.reindex() }

func (f *Func) reindex() {
	f.blockIdx = make(map[string]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		f.blockIdx[b.Name] = b
	}
}

// AddBlock appends a block and reindexes.
func (f *Func) AddBlock(b *Block) {
	f.Blocks = append(f.Blocks, b)
	if f.blockIdx != nil {
		f.blockIdx[b.Name] = b
	}
}

// Global is a module-level variable.
type Global struct {
	Name     string
	HasInit  bool
	Init     uint32
	Volatile bool
	// Sensitive marks variables listed in the defense configuration for
	// data-integrity protection.
	Sensitive bool
	// Shadow names this global's integrity twin (set by the integrity
	// pass on the protected global).
	Shadow string
	// IsShadow marks the twin itself; codegen allocates shadows in a
	// separate memory area so a single fault cannot hit both copies.
	IsShadow bool
}

// EnumInfo records an enum set for reporting (which constants were
// diversified).
type EnumInfo struct {
	Name      string
	Members   []string
	Values    []uint32
	Rewritten bool
}

// Module is a compilation unit.
type Module struct {
	Globals []*Global
	Funcs   []*Func
	Enums   []*EnumInfo
}

// Global returns the named global.
func (m *Module) Global(name string) (*Global, bool) {
	for _, g := range m.Globals {
		if g.Name == name {
			return g, true
		}
	}
	return nil, false
}

// Func returns the named function.
func (m *Module) Func(name string) (*Func, bool) {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// String dumps the module in a stable textual form.
func (m *Module) String() string {
	var sb strings.Builder
	globals := append([]*Global(nil), m.Globals...)
	sort.Slice(globals, func(i, j int) bool { return globals[i].Name < globals[j].Name })
	for _, g := range globals {
		fmt.Fprintf(&sb, "global @%s", g.Name)
		if g.Volatile {
			sb.WriteString(" volatile")
		}
		if g.HasInit {
			fmt.Fprintf(&sb, " = %#x", g.Init)
		}
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&sb, "\nfunc %s(params=%d slots=%d) {\n", f.Name, f.Params, f.NumSlots)
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", b.Name)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "\t%s\n", in)
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}
