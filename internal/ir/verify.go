package ir

import "fmt"

// Verify checks module well-formedness: every block ends in exactly one
// terminator, every branch target exists, values are defined before use
// within a block chain, slots/globals referenced are in range, and the
// shadow-global pairing the integrity defense establishes is consistent.
func (m *Module) Verify() error {
	if err := verifyGlobals(m); err != nil {
		return fmt.Errorf("ir: %w", err)
	}
	for _, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

// verifyGlobals checks the integrity-defense invariants: a global's shadow
// must exist, be marked IsShadow, belong to exactly one Sensitive owner,
// and shadows must not chain; conversely every IsShadow global must have
// an owner.
func verifyGlobals(m *Module) error {
	owner := map[string]string{}
	for _, g := range m.Globals {
		if g.Shadow == "" {
			continue
		}
		if g.IsShadow {
			return fmt.Errorf("shadow global %q has its own shadow %q", g.Name, g.Shadow)
		}
		if !g.Sensitive {
			return fmt.Errorf("global %q has shadow %q but is not sensitive", g.Name, g.Shadow)
		}
		sh, ok := m.Global(g.Shadow)
		if !ok {
			return fmt.Errorf("shadow %q of global %q does not exist", g.Shadow, g.Name)
		}
		if !sh.IsShadow {
			return fmt.Errorf("shadow %q of global %q is not marked as a shadow", g.Shadow, g.Name)
		}
		if prev, dup := owner[g.Shadow]; dup {
			return fmt.Errorf("shadow %q claimed by both %q and %q", g.Shadow, prev, g.Name)
		}
		owner[g.Shadow] = g.Name
	}
	for _, g := range m.Globals {
		if g.IsShadow && owner[g.Name] == "" {
			return fmt.Errorf("shadow global %q is not paired with a sensitive global", g.Name)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	names := map[string]bool{}
	for _, b := range f.Blocks {
		if names[b.Name] {
			return fmt.Errorf("duplicate block %q", b.Name)
		}
		names[b.Name] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %q empty", b.Name)
		}
		if b.Term() == nil {
			return fmt.Errorf("block %q has no terminator", b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("block %q: terminator misplaced at %d (%s)",
					b.Name, i, in)
			}
			if err := verifyInstr(m, f, names, in); err != nil {
				return fmt.Errorf("block %q: %s: %w", b.Name, in, err)
			}
		}
	}
	return nil
}

func verifyInstr(m *Module, f *Func, blocks map[string]bool, in *Instr) error {
	checkVal := func(v Value, required bool) error {
		if v == NoValue {
			if required {
				return fmt.Errorf("missing operand")
			}
			return nil
		}
		if int(v) >= f.NumValues || v < 0 {
			return fmt.Errorf("value v%d out of range", v)
		}
		return nil
	}
	switch in.Op {
	case OpConst:
		return checkVal(in.Dst, true)
	case OpLoadSlot, OpStoreSlot:
		if in.Slot < 0 || in.Slot >= f.NumSlots {
			return fmt.Errorf("slot %d out of range", in.Slot)
		}
		if in.Op == OpLoadSlot {
			return checkVal(in.Dst, true)
		}
		return checkVal(in.A, true)
	case OpLoadG, OpStoreG:
		if _, ok := m.Global(in.GName); !ok {
			return fmt.Errorf("unknown global %q", in.GName)
		}
		if in.Op == OpLoadG {
			return checkVal(in.Dst, true)
		}
		return checkVal(in.A, true)
	case OpBin:
		if in.BinOp == 0 {
			return fmt.Errorf("missing binop")
		}
		if err := checkVal(in.A, true); err != nil {
			return err
		}
		if err := checkVal(in.B, true); err != nil {
			return err
		}
		return checkVal(in.Dst, true)
	case OpNot:
		if err := checkVal(in.A, true); err != nil {
			return err
		}
		return checkVal(in.Dst, true)
	case OpCall:
		if len(in.Args) > 4 {
			return fmt.Errorf("too many arguments")
		}
		for _, a := range in.Args {
			if err := checkVal(a, true); err != nil {
				return err
			}
		}
		return checkVal(in.Dst, false)
	case OpRet:
		return checkVal(in.A, false)
	case OpJmp:
		if !blocks[in.Target] {
			return fmt.Errorf("unknown target %q", in.Target)
		}
		return nil
	case OpCondBr:
		if !blocks[in.TrueBlk] || !blocks[in.FalseBlk] {
			return fmt.Errorf("unknown branch target %q/%q", in.TrueBlk, in.FalseBlk)
		}
		return checkVal(in.A, true)
	}
	return fmt.Errorf("unknown op %d", in.Op)
}
