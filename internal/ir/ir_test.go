package ir

import (
	"strings"
	"testing"

	"glitchlab/internal/minic"
)

func lower(t *testing.T, src string) *Module {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m, err := Lower(chk)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

func TestLowerVerifies(t *testing.T) {
	m := lower(t, `
	enum e { A, B };
	volatile unsigned int g;
	unsigned int init = 5;
	unsigned int f(unsigned int x, unsigned int y) {
		unsigned int acc = 0;
		for (unsigned int i = 0; i < x; i = i + 1) {
			if (i % 2 == 0) { acc = acc + y; } else { acc = acc - 1; }
			while (acc > 100) { acc = acc / 2; break; }
		}
		if (acc != 0 && x > 1 || y == B) { return A; }
		return acc;
	}
	void main(void) {
		g = f(3, init);
		if (!g) { success(); }
		halt();
	}
	`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 || len(m.Globals) != 2 {
		t.Fatalf("funcs=%d globals=%d", len(m.Funcs), len(m.Globals))
	}
}

func TestLoopHeadersMarked(t *testing.T) {
	m := lower(t, `
	void main(void) {
		unsigned int a = 3;
		while (a != 0) { a = a - 1; }
		for (unsigned int i = 0; i < 4; i = i + 1) { a = a + 1; }
		if (a == 4) { success(); }
		halt();
	}
	`)
	f, _ := m.Func("main")
	headers := 0
	for _, b := range f.Blocks {
		if b.IsLoopHeader {
			headers++
			term := b.Term()
			if term == nil || term.Op != OpCondBr {
				t.Errorf("loop header %q lacks conditional terminator", b.Name)
			}
		}
	}
	if headers != 2 {
		t.Fatalf("loop headers = %d, want 2", headers)
	}
}

func TestVolatileTracking(t *testing.T) {
	m := lower(t, `
	volatile unsigned int g;
	void main(void) {
		volatile unsigned int v = 1;
		unsigned int x = v + g;
		if (x == 0) { success(); }
		halt();
	}
	`)
	f, _ := m.Func("main")
	if len(f.VolatileSlots) != 1 {
		t.Fatalf("volatile slots = %v", f.VolatileSlots)
	}
	volatileLoads := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if (in.Op == OpLoadG || in.Op == OpLoadSlot) && in.Volatile {
				volatileLoads++
			}
		}
	}
	if volatileLoads != 2 {
		t.Fatalf("volatile loads = %d, want 2 (slot v and global g)", volatileLoads)
	}
}

func TestEnumLoweredAsConstants(t *testing.T) {
	m := lower(t, `
	enum e { A, B, C };
	void main(void) {
		unsigned int x = C;
		if (x == 2) { success(); }
		halt();
	}
	`)
	if len(m.Enums) != 1 || m.Enums[0].Values[2] != 2 {
		t.Fatalf("enum info = %+v", m.Enums)
	}
}

func TestVerifyCatchesBrokenModules(t *testing.T) {
	m := lower(t, `void main(void) { halt(); }`)
	f := m.Funcs[0]

	// Branch to a missing block.
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs[:len(f.Blocks[0].Instrs)-1],
		&Instr{Op: OpJmp, Target: "nowhere", A: NoValue})
	if err := m.Verify(); err == nil {
		t.Error("verify accepted dangling branch target")
	}
}

func TestVerifyRejectsMisplacedTerminator(t *testing.T) {
	m := lower(t, `void main(void) { halt(); }`)
	f := m.Funcs[0]
	b := f.Blocks[0]
	// Insert a terminator in the middle.
	b.Instrs = append([]*Instr{{Op: OpJmp, Target: b.Name, A: NoValue}}, b.Instrs...)
	if err := m.Verify(); err == nil {
		t.Error("verify accepted mid-block terminator")
	}
}

func TestBinOpHelpers(t *testing.T) {
	pairs := map[BinOp]BinOp{
		BinEq: BinNe, BinLt: BinGe, BinGt: BinLe,
	}
	for op, neg := range pairs {
		if op.Negate() != neg || neg.Negate() != op {
			t.Errorf("Negate(%v) wrong", op)
		}
	}
	if BinLt.Swap() != BinGt || BinLe.Swap() != BinGe || BinEq.Swap() != BinEq {
		t.Error("Swap wrong")
	}
	if !BinEq.IsComparison() || BinAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
}

func TestModuleString(t *testing.T) {
	m := lower(t, `
	unsigned int g = 7;
	void main(void) { g = 1; halt(); }
	`)
	s := m.String()
	for _, want := range []string{"global @g = 0x7", "func main", "store @g"} {
		if !strings.Contains(s, want) {
			t.Errorf("module dump missing %q:\n%s", want, s)
		}
	}
}
