package runctl

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glitchlab/internal/chaos"
)

// ExitChaosCrash is the process exit code a CLI uses when -chaos-crash-op
// fires: the injected power loss has rolled the run directory back to its
// durable image and the process dies, exactly like a real kill. Distinct
// from ExitInterrupted so the chaos harness can tell "crashed on schedule"
// from "user hit Ctrl-C".
const ExitChaosCrash = 4

// CLIFlags is the run-control flag block shared by the experiment CLIs
// (glitchemu, glitchscan, glitcheval). Register with RegisterCLIFlags,
// then call Start after flag.Parse.
type CLIFlags struct {
	Dir      string        // -run-dir: checkpoint directory ("" = no checkpointing)
	Resume   bool          // -resume: continue the checkpoint in -run-dir
	Deadline time.Duration // -deadline: cancel the run after this long
	OutPath  string        // -out: write results here atomically instead of stdout

	// Chaos knobs: deterministic fault injection on the run's durability
	// I/O (checkpoints, manifest, -out). All off by default.
	ChaosSeed    uint64 // -chaos-seed: schedule seed
	ChaosEvery   uint64 // -chaos-every: mean ops between injected faults (0 = off)
	ChaosCrashOp int64  // -chaos-crash-op: simulate power loss at this op index (-1 = off)

	fsys chaos.FS
}

// RegisterCLIFlags installs -run-dir, -resume, -deadline and -out on fs,
// plus the -chaos-* fault-injection knobs.
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.StringVar(&f.Dir, "run-dir", "",
		"checkpoint directory for crash-safe runs (created if missing)")
	fs.BoolVar(&f.Resume, "resume", false,
		"resume the checkpoint in -run-dir, skipping completed work units")
	fs.DurationVar(&f.Deadline, "deadline", 0,
		"cancel the run after this duration, flushing the checkpoint (e.g. 30m)")
	fs.StringVar(&f.OutPath, "out", "",
		"write results to this file atomically instead of stdout")
	fs.Uint64Var(&f.ChaosSeed, "chaos-seed", 0,
		"seed for the deterministic fault-injection schedule")
	fs.Uint64Var(&f.ChaosEvery, "chaos-every", 0,
		"inject a disk fault on average every N durability I/O ops (0 = off)")
	fs.Int64Var(&f.ChaosCrashOp, "chaos-crash-op", -1,
		"simulate power loss at this durability I/O op and exit 4 (-1 = off)")
	return f
}

// FS returns the filesystem the run's durability I/O goes through: the
// real one, or — when any -chaos-* knob is set — a deterministic fault
// injector over it. Built once; Start and NewOutput share it so the op
// index spans the whole invocation.
func (f *CLIFlags) FS() chaos.FS {
	if f.fsys != nil {
		return f.fsys
	}
	if f.ChaosEvery == 0 && f.ChaosCrashOp < 0 {
		f.fsys = chaos.OS{}
		return f.fsys
	}
	var sched chaos.Overlay
	if f.ChaosCrashOp >= 0 {
		sched = append(sched, chaos.FaultAt(uint64(f.ChaosCrashOp), chaos.FaultCrash))
	}
	if f.ChaosEvery > 0 {
		sched = append(sched, chaos.Seeded{Seed: f.ChaosSeed, Every: f.ChaosEvery})
	}
	inj := chaos.NewInjector(chaos.OS{}, sched).WithSeed(f.ChaosSeed | 1)
	inj.OnCrash(func() {
		fmt.Fprintln(os.Stderr, "chaos: simulated power loss at -chaos-crash-op; run directory rolled back to its durable image")
		os.Exit(ExitChaosCrash)
	})
	f.fsys = inj
	return f.fsys
}

// Start builds the *Run for one CLI invocation: a context that cancels on
// SIGINT/SIGTERM (and on -deadline, if set), plus checkpointing when
// -run-dir was given. The returned cancel must be deferred; the caller
// also defers run.Close(). After the first signal cancels the context the
// signal handler is released, so a second Ctrl-C kills the process the
// usual way if the drain itself wedges.
func (f *CLIFlags) Start(tool, configHash string, seed uint64) (*Run, context.CancelFunc, error) {
	if f.Resume && f.Dir == "" {
		return nil, nil, errors.New("-resume requires -run-dir")
	}
	ctx := context.Background()
	var cancels []context.CancelFunc
	if f.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.Deadline)
		cancels = append(cancels, cancel)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	cancels = append(cancels, stop)
	go func() {
		<-ctx.Done()
		stop()
	}()
	cancel := func() {
		for i := len(cancels) - 1; i >= 0; i-- {
			cancels[i]()
		}
	}

	var (
		run *Run
		err error
	)
	if f.Dir == "" {
		run = New(ctx)
	} else {
		m := Manifest{Tool: tool, ConfigHash: configHash, Seed: seed}
		run, err = OpenFS(ctx, f.FS(), f.Dir, m, f.Resume)
		if err != nil {
			cancel()
			return nil, nil, err
		}
	}
	return run, cancel, nil
}

// ResumeHint renders the message an interrupted CLI prints so the user
// knows how to pick the run back up.
func (f *CLIFlags) ResumeHint(tool string) string {
	if f.Dir == "" {
		return fmt.Sprintf(
			"%s: interrupted; no -run-dir was set, so no checkpoint was kept (partial work is lost)",
			tool)
	}
	return fmt.Sprintf(
		"%s: interrupted; checkpoint flushed to %s — resume with:\n  %s -run-dir %s -resume <same flags>",
		tool, f.Dir, tool, f.Dir)
}

// ExitCode maps a CLI run's final error to its process exit code:
// 0 for success, ExitInterrupted for a canceled/deadlined run, 1 otherwise.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrInterrupted):
		return ExitInterrupted
	default:
		return 1
	}
}

// Output buffers a CLI's results and commits them atomically. With no
// path the Writer is plain stdout; with a path (-out) the results
// accumulate in memory and Commit writes them in one atomic rename, so an
// interrupted run never leaves a truncated results file — callers only
// Commit on success.
type Output struct {
	path string
	fs   chaos.FS
	buf  bytes.Buffer
}

// NewOutput returns an Output targeting path ("" = stdout) on the real
// filesystem.
func NewOutput(path string) *Output {
	return &Output{path: path, fs: chaos.OS{}}
}

// NewOutput returns the Output for this invocation's -out flag, committing
// through the same (possibly fault-injected) filesystem as the run.
func (f *CLIFlags) NewOutput() *Output {
	return &Output{path: f.OutPath, fs: f.FS()}
}

// Writer returns the destination for result rendering.
func (o *Output) Writer() io.Writer {
	if o.path == "" {
		return os.Stdout
	}
	return &o.buf
}

// Commit atomically publishes the buffered results to the output path.
// A no-op when writing to stdout.
func (o *Output) Commit() error {
	if o.path == "" {
		return nil
	}
	return WriteFileAtomicFS(o.fs, o.path, o.buf.Bytes(), 0o666)
}
