package runctl

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"glitchlab/internal/chaos"
)

// chaosWorkload runs a synthetic 16-unit engine over fsys-backed
// checkpointing in dir: every unit's "result" is a deterministic
// function of its name, and completed units are skipped via Lookup.
// Returns the rendered output (the byte-identity surface) or an error.
func chaosWorkload(fsys chaos.FS, dir string, resume bool) ([]byte, error) {
	m := Manifest{Tool: "chaostool", ConfigHash: "sha256:feed", Seed: 7}
	rn, err := OpenFS(context.Background(), fsys, dir, m, resume)
	if err != nil {
		return nil, err
	}
	defer rn.Close()
	type result struct {
		Unit string `json:"unit"`
		V    int    `json:"v"`
	}
	var out bytes.Buffer
	for i := 0; i < 16; i++ {
		unit := fmt.Sprintf("u%02d", i)
		var res result
		if !rn.Lookup(unit, &res) {
			res = result{Unit: unit, V: i * i}
			if err := rn.Complete(unit, res); err != nil {
				return nil, err
			}
		}
		fmt.Fprintf(&out, "%s=%d\n", res.Unit, res.V)
	}
	if err := rn.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// chaosGolden is the clean run's output, computed once.
func chaosGolden(t *testing.T) []byte {
	t.Helper()
	golden, err := chaosWorkload(chaos.OS{}, t.TempDir(), false)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	return golden
}

// TestChaosCrashConsistencySweep is the tentpole property test: for every
// fault class at every I/O op index of the workload, the run either
// completes byte-identical to the clean golden, or fails loudly and — after
// a simulated power loss — resumes on the real filesystem to byte-identical
// output. Never silent corruption. The sweep covers well over 200 seeded
// schedules in full mode (5 classes x ~70 ops); -short strides by 3.
func TestChaosCrashConsistencySweep(t *testing.T) {
	golden := chaosGolden(t)

	// Counting pass: learn the workload's total op count T.
	probe := chaos.NewInjector(chaos.OS{}, nil)
	if _, err := chaosWorkload(probe, t.TempDir(), false); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	total := probe.Ops()
	if total < 40 {
		t.Fatalf("workload too small for a meaningful sweep: %d ops", total)
	}

	classes := []chaos.Fault{
		chaos.FaultENOSPC, chaos.FaultEIO, chaos.FaultTorn,
		chaos.FaultDropSync, chaos.FaultCrash,
	}
	stride := uint64(1)
	if testing.Short() {
		stride = 3
	}
	schedules := 0
	for _, class := range classes {
		for n := uint64(0); n < total; n += stride {
			schedules++
			name := fmt.Sprintf("%s@op%d", class, n)
			dir := filepath.Join(t.TempDir(), "run")
			inj := chaos.NewInjector(chaos.OS{}, chaos.FaultAt(n, class)).
				WithSeed(chaos.Mix(uint64(schedules), n))
			out, err := chaosWorkload(inj, dir, false)

			if err == nil {
				// err == nil means the fault was silent by design (e.g. a
				// dropped fsync). Output must be byte-identical.
				if !bytes.Equal(out, golden) {
					t.Fatalf("%s: silent corruption: output differs from golden", name)
				}
			} else if !chaos.IsDiskFault(err) {
				t.Fatalf("%s: failure not loud/typed: %v", name, err)
			}

			// Power loss (a no-op if the schedule already crashed), then
			// resume on the clean filesystem: the durable image must carry
			// the run to byte-identical output or refuse loudly. Only a
			// dropped fsync — a disk that lied about durability — may
			// destroy state the software believed durable; even then the
			// refusal must be loud, never wrong bytes.
			inj.PowerLoss()
			resumed, rerr := resumeClean(dir)
			if rerr != nil {
				if class != chaos.FaultDropSync {
					t.Fatalf("%s: resume failed where it should succeed: %v", name, rerr)
				}
				continue // loud refusal: acceptable for a lying disk
			}
			if !bytes.Equal(resumed, golden) {
				t.Fatalf("%s: resumed output differs from golden:\n got %q\nwant %q",
					name, resumed, golden)
			}
		}
	}
	t.Logf("swept %d fault schedules over %d ops", schedules, total)
}

// resumeClean finishes whatever durable state dir holds using the real
// filesystem: resume if a manifest survived, start fresh otherwise.
func resumeClean(dir string) ([]byte, error) {
	return chaosWorkload(chaos.OS{}, dir, HasCheckpoint(dir))
}

// TestChaosSeededScheduleSweep drives the same workload under seeded
// random background faults (the schedule mix the daemon hammer uses) for
// many seeds, asserting the same resume-byte-identical-or-fail-loudly
// contract. Together with the pinned sweep above this pushes the schedule
// count well past the acceptance floor.
func TestChaosSeededScheduleSweep(t *testing.T) {
	golden := chaosGolden(t)
	seeds := 60
	if testing.Short() {
		seeds = 20
	}
	for seed := 1; seed <= seeds; seed++ {
		dir := filepath.Join(t.TempDir(), "run")
		inj := chaos.NewInjector(chaos.OS{},
			chaos.Seeded{Seed: uint64(seed), Every: 5}).WithSeed(uint64(seed))
		out, err := chaosWorkload(inj, dir, false)
		if err == nil && !bytes.Equal(out, golden) {
			t.Fatalf("seed %d: silent corruption", seed)
		}
		if err != nil && !chaos.IsDiskFault(err) {
			t.Fatalf("seed %d: failure not typed as disk fault: %v", seed, err)
		}
		inj.PowerLoss()
		resumed, rerr := resumeClean(dir)
		if rerr != nil {
			// The seeded mix includes dropped fsyncs, so a loud refusal
			// after power loss is within contract (see the pinned sweep).
			continue
		}
		if !bytes.Equal(resumed, golden) {
			t.Fatalf("seed %d: resumed output differs from golden", seed)
		}
	}
}

// TestWriteFileAtomicDirSyncRegression is the satellite-1 regression: an
// atomic write whose directory fsync is dropped loses the file on power
// loss, and the dir sync WriteFileAtomicFS now performs prevents exactly
// that.
func TestWriteFileAtomicDirSyncRegression(t *testing.T) {
	// Locate the SyncDir op in the atomic-write sequence.
	probe := chaos.NewInjector(chaos.OS{}, nil)
	if err := WriteFileAtomicFS(probe, filepath.Join(t.TempDir(), "f"), []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()

	lostSomewhere := false
	for n := uint64(0); n < total; n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "manifest.json")
		inj := chaos.NewInjector(chaos.OS{}, chaos.AtOp{N: n, Fault: chaos.FaultDropSync})
		if err := WriteFileAtomicFS(inj, path, []byte("payload"), 0o666); err != nil {
			t.Fatalf("op %d: dropped fsync must be silent, got %v", n, err)
		}
		inj.PowerLoss()
		data, err := os.ReadFile(path)
		if err != nil || string(data) != "payload" {
			lostSomewhere = true
		}
	}
	if !lostSomewhere {
		t.Fatal("no dropped fsync lost the file: the dir-sync regression guard is not exercising anything")
	}

	// With no fault injected, the file must survive power loss at any
	// moment after WriteFileAtomicFS returned.
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	inj := chaos.NewInjector(chaos.OS{}, nil)
	if err := WriteFileAtomicFS(inj, path, []byte("payload"), 0o666); err != nil {
		t.Fatal(err)
	}
	inj.PowerLoss()
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("fully-synced atomic write lost on power loss: %q, %v", data, err)
	}
}

// TestWriteFileAtomicOverwriteSurvives: overwriting an existing file and
// losing power must leave either the old or the new content, never a
// mix, at every fault point.
func TestWriteFileAtomicOverwriteSurvives(t *testing.T) {
	probe := chaos.NewInjector(chaos.OS{}, nil)
	{
		p := filepath.Join(t.TempDir(), "f")
		if err := os.WriteFile(p, []byte("old"), 0o666); err != nil {
			t.Fatal(err)
		}
		if err := WriteFileAtomicFS(probe, p, []byte("new"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	total := probe.Ops()
	for n := uint64(0); n <= total; n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "f")
		if err := os.WriteFile(path, []byte("old"), 0o666); err != nil {
			t.Fatal(err)
		}
		inj := chaos.NewInjector(chaos.OS{}, chaos.FaultAt(n, chaos.FaultCrash)).WithSeed(n + 1)
		_ = WriteFileAtomicFS(inj, path, []byte("new"), 0o666)
		inj.PowerLoss()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("crash at op %d: file vanished entirely: %v", n, err)
		}
		if s := string(data); s != "old" && s != "new" {
			t.Fatalf("crash at op %d: torn atomic write: %q", n, s)
		}
	}
}

// TestCheckpointTornTailEveryBoundary extends the torn-tail tolerance
// test to chaos-injected short writes at every byte boundary of the
// final checkpoint record (satellite: no more hand-truncated fixtures).
func TestCheckpointTornTailEveryBoundary(t *testing.T) {
	golden := chaosGolden(t)

	// Find the final checkpoint-record write: run once, counting, and
	// record each OpWrite's index and length via a schedule probe.
	dir := t.TempDir()
	if _, err := chaosWorkload(chaos.OS{}, dir, false); err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, CheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(ckpt, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	recLen := len(last) + 1 // trailing newline

	for k := 0; k < recLen; k++ {
		dir := filepath.Join(t.TempDir(), "run")
		// Run the workload cleanly, then simulate the torn tail by
		// truncating the final record to k bytes — through the injector's
		// crash model so the cut is the chaos-injected one, not a fixture.
		inj := chaos.NewInjector(chaos.OS{}, nil)
		if _, err := chaosWorkload(inj, dir, false); err != nil {
			t.Fatal(err)
		}
		cpath := filepath.Join(dir, CheckpointName)
		data, err := os.ReadFile(cpath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(cpath, int64(len(data)-recLen+k)); err != nil {
			t.Fatal(err)
		}
		out, err := chaosWorkload(chaos.OS{}, dir, true)
		if err != nil {
			t.Fatalf("torn at byte %d/%d: resume refused: %v", k, recLen, err)
		}
		if !bytes.Equal(out, golden) {
			t.Fatalf("torn at byte %d/%d: resumed output differs from golden", k, recLen)
		}
	}
}

// TestChaosCLIFlagsBuildInjector exercises the -chaos-* flag wiring:
// a seeded schedule makes Start/Complete surface typed disk faults.
func TestChaosCLIFlagsBuildInjector(t *testing.T) {
	f := &CLIFlags{Dir: t.TempDir() + "/run", ChaosSeed: 3, ChaosEvery: 1, ChaosCrashOp: -1}
	fsys := f.FS()
	if _, ok := fsys.(*chaos.Injector); !ok {
		t.Fatalf("FS() = %T, want *chaos.Injector", fsys)
	}
	if same := f.FS(); same != fsys {
		t.Fatal("FS() must be built once and shared")
	}
	_, cancel, err := f.Start("tool", "sha256:1", 0)
	if err == nil {
		cancel()
		t.Fatal("Every=1 must fault the very first durability op")
	}
	if !chaos.IsDiskFault(err) {
		t.Fatalf("err = %v, want a typed disk fault", err)
	}

	// Flags registered but untouched must yield the passthrough FS.
	clean := RegisterCLIFlags(flag.NewFlagSet("t", flag.ContinueOnError))
	clean.Dir = t.TempDir() + "/run"
	if _, ok := clean.FS().(chaos.OS); !ok {
		t.Fatalf("no chaos flags must yield the passthrough FS, got %T", clean.FS())
	}
}

// TestExitCodeChaosCrash pins the exit-code contract: ExitChaosCrash is
// distinct from success, failure and interruption.
func TestExitCodeChaosCrash(t *testing.T) {
	if ExitChaosCrash == 0 || ExitChaosCrash == 1 || ExitChaosCrash == ExitInterrupted {
		t.Fatalf("ExitChaosCrash = %d collides with another exit code", ExitChaosCrash)
	}
	if got := ExitCode(errors.New("boom")); got != 1 {
		t.Fatalf("ExitCode(real failure) = %d", got)
	}
}
