package runctl

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestHasCheckpointAndReadManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	if HasCheckpoint(dir) {
		t.Error("HasCheckpoint true for a directory that does not exist")
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("ReadManifest of a missing dir should error")
	} else if !IsNoManifest(err) {
		t.Errorf("missing manifest should satisfy IsNoManifest: %v", err)
	}

	// A bare directory without a manifest is still not a checkpoint (a
	// crash between MkdirAll and the first manifest write leaves this).
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	if HasCheckpoint(dir) {
		t.Error("HasCheckpoint true for an empty directory")
	}

	want := Manifest{Tool: "glitchemu", ConfigHash: "abc123", Seed: 7}
	rn, err := Open(context.Background(), dir, want, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rn.Close(); err != nil {
		t.Fatal(err)
	}
	if !HasCheckpoint(dir) {
		t.Error("HasCheckpoint false after Open wrote a manifest")
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if got.Tool != want.Tool || got.ConfigHash != want.ConfigHash || got.Seed != want.Seed {
		t.Errorf("ReadManifest = %+v, want %+v", got, want)
	}
}

func TestReadManifestCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, err := ReadManifest(dir)
	if err == nil {
		t.Fatal("corrupt manifest should error")
	}
	if IsNoManifest(err) {
		t.Error("corrupt manifest must be distinguishable from a missing one")
	}
}
