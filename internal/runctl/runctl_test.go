package runctl

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testManifest() Manifest {
	return Manifest{Tool: "testtool", ConfigHash: "sha256:abcd", Seed: 7}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(path, []byte("first\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second\n" {
		t.Fatalf("content = %q", data)
	}
	// No stray temp files may survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory not clean after atomic writes: %v", entries)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	type cell struct {
		Hits  uint64            `json:"hits"`
		ByVal map[uint32]uint64 `json:"by_val"`
	}
	run, err := Open(context.Background(), dir, testManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	want := cell{Hits: 42, ByVal: map[uint32]uint64{0xdead: 3, 1: 9}}
	if err := run.Complete("unit a", want); err != nil {
		t.Fatal(err)
	}
	if err := run.Complete("unit b", cell{Hits: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := Open(context.Background(), dir, testManifest(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Loaded() != 2 {
		t.Fatalf("Loaded = %d, want 2", resumed.Loaded())
	}
	var got cell
	if !resumed.Lookup("unit a", &got) {
		t.Fatal("unit a not found after resume")
	}
	if got.Hits != want.Hits || got.ByVal[0xdead] != 3 || got.ByVal[1] != 9 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if resumed.Lookup("unit c", nil) {
		t.Fatal("phantom unit reported done")
	}

	// The closed manifest must carry final totals.
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.UnitsDone != 2 || m.UnitsQuarantined != 0 || m.Tool != "testtool" {
		t.Fatalf("manifest totals wrong: %+v", m)
	}
}

func TestCheckpointToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	run, err := Open(context.Background(), dir, testManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Complete("whole", map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unparseable final line.
	cpath := filepath.Join(dir, CheckpointName)
	f, err := os.OpenFile(cpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"unit":"torn","da`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resumed, err := Open(context.Background(), dir, testManifest(), true)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	defer resumed.Close()
	if !resumed.Lookup("whole", nil) {
		t.Fatal("whole unit lost")
	}
	if resumed.Lookup("torn", nil) {
		t.Fatal("torn unit must rerun, not count as done")
	}
}

func TestCheckpointRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	cpath := filepath.Join(dir, CheckpointName)
	run, err := Open(context.Background(), dir, testManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	body := `{"unit":"a"}` + "\ngarbage not json\n" + `{"unit":"b"}` + "\n"
	if err := os.WriteFile(cpath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(context.Background(), dir, testManifest(), true); err == nil {
		t.Fatal("mid-file corruption must refuse to load")
	}
}

func TestResumeRefusesDrift(t *testing.T) {
	dir := t.TempDir()
	run, err := Open(context.Background(), dir, testManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	run.Close()

	cases := []Manifest{
		{Tool: "othertool", ConfigHash: "sha256:abcd", Seed: 7},
		{Tool: "testtool", ConfigHash: "sha256:ffff", Seed: 7},
		{Tool: "testtool", ConfigHash: "sha256:abcd", Seed: 8},
	}
	for _, m := range cases {
		_, err := Open(context.Background(), dir, m, true)
		var de *DriftError
		if !errors.As(err, &de) {
			t.Fatalf("manifest %+v: got %v, want DriftError", m, err)
		}
	}
}

func TestFreshOpenRefusesExistingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	run, err := Open(context.Background(), dir, testManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	if _, err := Open(context.Background(), dir, testManifest(), false); err == nil {
		t.Fatal("fresh open over an existing checkpoint must refuse")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("refusal should mention -resume: %v", err)
	}
}

func TestProtectQuarantinesPanic(t *testing.T) {
	dir := t.TempDir()
	run, err := Open(context.Background(), dir, testManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	err = run.Protect("poisoned", func() error {
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
	if pe.Unit != "poisoned" || !strings.Contains(string(pe.Stack), "runctl") {
		t.Fatalf("panic error incomplete: %+v", pe)
	}
	if err := run.Protect("fine", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	q := run.Quarantined()
	if len(q) != 1 || q[0].Unit != "poisoned" || q[0].Panic != "boom" {
		t.Fatalf("quarantine list wrong: %+v", q)
	}
	ferr := run.FinishErr()
	var qe *QuarantineError
	if !errors.As(ferr, &qe) || len(qe.Units) != 1 {
		t.Fatalf("FinishErr = %v", ferr)
	}
	if !strings.Contains(ferr.Error(), "poisoned") {
		t.Fatalf("FinishErr must name the unit: %v", ferr)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}

	// A resumed run retries the quarantined unit rather than skipping it.
	resumed, err := Open(context.Background(), dir, testManifest(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Lookup("poisoned", nil) {
		t.Fatal("quarantined unit must not count as done on resume")
	}
}

func TestErrWrapsInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	run := New(ctx)
	if err := run.Err(); err != nil {
		t.Fatalf("live run: %v", err)
	}
	cancel()
	if err := run.Err(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("canceled run: %v", err)
	}
}

func TestNilRunIsInert(t *testing.T) {
	var run *Run
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if run.Lookup("x", nil) {
		t.Fatal("nil run reported work done")
	}
	if err := run.Complete("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := run.FinishErr(); err != nil {
		t.Fatal(err)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	called := false
	if err := run.Protect("x", func() error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("nil Protect must still run the unit")
	}
	// A nil run must not swallow panics: bare library use crashes loud.
	defer func() {
		if recover() == nil {
			t.Fatal("nil Protect must propagate panics")
		}
	}()
	_ = run.Protect("x", func() error { panic("loud") })
}

func TestExitCode(t *testing.T) {
	if c := ExitCode(nil); c != 0 {
		t.Fatalf("nil: %d", c)
	}
	wrapped := errors.Join(errors.New("partial"), ErrInterrupted)
	if c := ExitCode(wrapped); c != ExitInterrupted {
		t.Fatalf("interrupted: %d", c)
	}
	if c := ExitCode(errors.New("boom")); c != 1 {
		t.Fatalf("failure: %d", c)
	}
}

func TestConfigHashStableAndSensitive(t *testing.T) {
	type cfg struct {
		Model    string
		MaxFlips int
	}
	a := ConfigHash(cfg{"and", 16})
	b := ConfigHash(cfg{"and", 16})
	c := ConfigHash(cfg{"or", 16})
	if a != b {
		t.Fatalf("hash unstable: %s vs %s", a, b)
	}
	if a == c {
		t.Fatal("hash insensitive to config change")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Fatalf("hash %q lacks scheme prefix", a)
	}
}

func TestStartDeadlineCancels(t *testing.T) {
	f := &CLIFlags{Deadline: 10 * time.Millisecond}
	run, cancel, err := f.Start("testtool", "sha256:abcd", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	defer run.Close()
	deadline := time.After(5 * time.Second)
	for run.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("deadline never fired")
		case <-time.After(time.Millisecond):
		}
	}
	if !errors.Is(run.Err(), ErrInterrupted) {
		t.Fatalf("deadline error: %v", run.Err())
	}
}

func TestStartResumeRequiresDir(t *testing.T) {
	f := &CLIFlags{Resume: true}
	if _, _, err := f.Start("testtool", "x", 1); err == nil {
		t.Fatal("-resume without -run-dir must refuse")
	}
}

func TestOutputCommitAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.txt")
	o := NewOutput(path)
	if _, err := o.Writer().Write([]byte("table\n")); err != nil {
		t.Fatal(err)
	}
	// Nothing visible before Commit: an interrupted run leaves no file.
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("output leaked before commit: %v", err)
	}
	if err := o.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "table\n" {
		t.Fatalf("content = %q", data)
	}
}
