package runctl

import (
	"fmt"
	"os"
	"path/filepath"

	"glitchlab/internal/chaos"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file and the result survives power loss: the bytes land in a
// temp file in the same directory, are fsynced, renamed over path, and
// the parent directory is fsynced to make the rename itself durable. An
// interrupted run therefore either leaves the previous file intact or the
// new one complete — never a truncated artifact. The rename is atomic
// only within one filesystem, which colocating the temp file guarantees.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicFS(chaos.OS{}, path, data, perm)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit filesystem, so
// fault-injection tests can exercise every failure point of the
// write/fsync/rename/dirsync sequence.
func WriteFileAtomicFS(fsys chaos.FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmp != nil {
			tmp.Close()
			fsys.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	tmp = nil // closed; from here only the rename source needs cleanup
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	// fsyncing the file made its *bytes* durable, not its directory entry:
	// without this dir sync a power loss after the rename can bring back
	// the old file, or no file at all.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	return nil
}
