package runctl

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes land in a temp file in the same directory, are
// fsynced, and only then renamed over path. An interrupted run therefore
// either leaves the previous file intact or the new one complete — never a
// truncated artifact. The rename is atomic only within one filesystem,
// which colocating the temp file guarantees.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	tmp = nil // renamed away; nothing to clean up
	return nil
}
