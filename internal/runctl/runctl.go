// Package runctl is the run controller for glitchlab's long-running
// engines: the Section IV mutation campaigns, the Section V grid scans and
// parameter searches, and the Table VI defense-efficacy matrix. Those
// experiments are exhaustive sweeps — hours of work on a large
// configuration — and the paper's physical counterparts (ChipWhisperer
// scans) are interrupted and resumed constantly. runctl makes the
// simulated ones behave the same way:
//
//   - cancellation: a Run wraps a context.Context; engines check Err()
//     between work units and drain cleanly on cancel or deadline,
//     returning partial results together with a typed ErrInterrupted;
//   - durable checkpointing: every completed work unit is appended to a
//     crash-safe JSONL checkpoint (append + fsync per record) in a run
//     directory, next to an atomically-written manifest recording the
//     tool, config hash, seed and unit totals; a resumed run skips
//     completed units and merges their checkpointed results, producing
//     byte-identical output versus an uninterrupted run;
//   - panic isolation: a panicking work unit is recovered, recorded as a
//     quarantined unit (with its stack) in the checkpoint and the obs
//     failure ring, and the run continues; it fails at the end with a
//     QuarantineError naming the poisoned units instead of crashing
//     mid-flight.
//
// A nil *Run is valid everywhere and disables all three behaviors, so
// engines thread a *Run unconditionally and bare library calls keep their
// original semantics (no checkpoint files, panics crash loud).
package runctl

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"glitchlab/internal/chaos"
	"glitchlab/internal/obs"
)

// ErrInterrupted is the typed cancellation error every engine returns when
// a run is cut short by a context cancel, deadline or termination signal.
// Match with errors.Is; the partial results returned alongside it cover
// the units completed before the interruption, all of which are already in
// the checkpoint.
var ErrInterrupted = errors.New("run interrupted")

// ExitInterrupted is the process exit code the experiment CLIs use for an
// interrupted run (distinct from 1, a real failure), so scripts can tell
// "resume me" apart from "fix me".
const ExitInterrupted = 3

// Checkpoint file names inside a run directory.
const (
	ManifestName   = "manifest.json"
	CheckpointName = "checkpoint.jsonl"
)

// Metric names the run controller maintains in the obs registry.
const (
	MetricUnitsCompleted   = "runctl.units_completed_total"
	MetricUnitsSkipped     = "runctl.units_skipped_total" // resumed from checkpoint
	MetricUnitsQuarantined = "runctl.units_quarantined_total"
	MetricFlushLatency     = "runctl.checkpoint_flush_us" // append+fsync per unit
)

// manifestVersion is bumped whenever the checkpoint format changes
// incompatibly; a resume across versions is refused as config drift.
const manifestVersion = 1

// Manifest identifies what a run directory's checkpoint belongs to. It is
// written atomically (temp file + rename) when the run opens and again,
// with final unit totals, when it closes, so the directory always holds
// either a complete manifest or none.
type Manifest struct {
	Version    int    `json:"version"`
	Tool       string `json:"tool"`
	ConfigHash string `json:"config_hash"`
	Seed       uint64 `json:"seed"`
	// Unit totals, refreshed on Close (a crash leaves them stale; the
	// checkpoint itself is the source of truth for what completed).
	UnitsDone        int `json:"units_done"`
	UnitsQuarantined int `json:"units_quarantined"`
}

// record is one checkpoint JSONL line: either a completed unit with its
// serialized result, or a quarantined unit with its panic and stack.
type record struct {
	Unit       string          `json:"unit"`
	Data       json.RawMessage `json:"data,omitempty"`
	Quarantine bool            `json:"quarantine,omitempty"`
	Panic      string          `json:"panic,omitempty"`
	Stack      string          `json:"stack,omitempty"`
}

// Quarantine describes one work unit that panicked and was isolated.
type Quarantine struct {
	Unit  string
	Panic string
	Stack string
}

// DriftError is returned when -resume finds a checkpoint written under a
// different configuration: merging incompatible partial results would be
// silently wrong, so the resume is refused.
type DriftError struct {
	Field      string
	Have, Want string
}

func (e *DriftError) Error() string {
	return fmt.Sprintf(
		"runctl: checkpoint was written with %s=%s but this invocation has %s=%s; refusing to merge incompatible partial results (rerun with the original flags, or start over in a fresh -run-dir)",
		e.Field, e.Have, e.Field, e.Want)
}

// PanicError is the error Protect returns for a recovered work-unit panic.
type PanicError struct {
	Unit  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("work unit %q panicked: %v", e.Unit, e.Value)
}

// QuarantineError reports, at the end of an otherwise-completed run, every
// unit that panicked and was quarantined.
type QuarantineError struct {
	Units []Quarantine
}

func (e *QuarantineError) Error() string {
	names := make([]string, len(e.Units))
	for i, q := range e.Units {
		names[i] = fmt.Sprintf("%q (%s)", q.Unit, q.Panic)
	}
	return fmt.Sprintf("%d work unit(s) quarantined after panicking: %s",
		len(e.Units), strings.Join(names, ", "))
}

// Hooks are test and instrumentation points on the unit lifecycle.
// BeforeUnit runs inside Protect's recovery scope, so a hook that panics
// exercises the real quarantine path (fault injection); AfterUnit runs
// after a unit's checkpoint record is durable (tests inject cancellation
// here to kill runs after a chosen prefix of units).
type Hooks struct {
	BeforeUnit func(unit string)
	AfterUnit  func(unit string)
}

// Run is the controller threaded through one long-running invocation. All
// methods are safe for concurrent use by worker goroutines, and all are
// no-ops on a nil receiver.
type Run struct {
	// Hooks may be set before the run starts (not concurrently with it).
	Hooks Hooks
	// Tracer, when non-nil, receives a failure-ring record per quarantined
	// unit (obs.Tracer methods are nil-safe).
	Tracer *obs.Tracer

	ctx context.Context
	dir string
	fs  chaos.FS

	mu         sync.Mutex
	file       chaos.File // checkpoint.jsonl, append mode; nil = no checkpointing
	manifest   Manifest
	done       map[string]json.RawMessage
	loaded     int // units restored from an existing checkpoint
	quarantine []Quarantine
	closed     bool

	completed, skipped, quarantined *obs.Counter
	flushLat                        *obs.Histogram
}

// New returns a cancellation-only controller: Err reflects ctx, Protect
// isolates panics, but nothing is checkpointed (Lookup always misses).
func New(ctx context.Context) *Run {
	r := &Run{ctx: ctx, done: map[string]json.RawMessage{}}
	r.initMetrics(obs.Default)
	return r
}

// Open creates (or, with resume, reopens) the run directory dir and its
// checkpoint. A fresh open refuses a directory that already holds a
// checkpoint; a resume refuses a manifest whose tool, config hash or seed
// differ from m (see DriftError) and otherwise loads every completed unit
// so Lookup can skip them.
func Open(ctx context.Context, dir string, m Manifest, resume bool) (*Run, error) {
	return OpenFS(ctx, chaos.OS{}, dir, m, resume)
}

// OpenFS is Open over an explicit filesystem. Production callers pass
// chaos.OS{} (what Open does); fault-injection tests and the -chaos-*
// CLI knobs pass a *chaos.Injector to glitch every durability syscall
// the controller performs.
func OpenFS(ctx context.Context, fsys chaos.FS, dir string, m Manifest, resume bool) (*Run, error) {
	if dir == "" {
		return nil, errors.New("runctl: empty run directory")
	}
	if err := fsys.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("runctl: run dir: %w", err)
	}
	m.Version = manifestVersion
	r := &Run{
		ctx:      ctx,
		dir:      dir,
		fs:       fsys,
		manifest: m,
		done:     map[string]json.RawMessage{},
	}
	r.initMetrics(obs.Default)
	mpath := filepath.Join(dir, ManifestName)
	cpath := filepath.Join(dir, CheckpointName)
	if resume {
		data, err := fsys.ReadFile(mpath)
		if err != nil {
			return nil, fmt.Errorf("runctl: nothing to resume in %s: %w", dir, err)
		}
		var prev Manifest
		if err := json.Unmarshal(data, &prev); err != nil {
			return nil, fmt.Errorf("runctl: corrupt manifest in %s: %w", dir, err)
		}
		if err := checkDrift(prev, m); err != nil {
			return nil, err
		}
		if err := r.loadCheckpoint(cpath); err != nil {
			return nil, err
		}
	} else {
		for _, p := range []string{mpath, cpath} {
			if _, err := fsys.Stat(p); err == nil {
				return nil, fmt.Errorf(
					"runctl: %s already holds %s; pass -resume to continue that run or pick a fresh -run-dir",
					dir, filepath.Base(p))
			}
		}
		if err := r.writeManifestLocked(); err != nil {
			return nil, err
		}
	}
	f, err := fsys.OpenFile(cpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("runctl: checkpoint: %w", err)
	}
	// Make the checkpoint file's directory entry durable up front: record
	// fsyncs alone would otherwise leave a file that vanishes wholesale on
	// power loss.
	if err := fsys.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("runctl: checkpoint: %w", err)
	}
	r.file = f
	return r, nil
}

func checkDrift(prev, want Manifest) error {
	switch {
	case prev.Version != want.Version:
		return &DriftError{Field: "checkpoint version",
			Have: fmt.Sprint(prev.Version), Want: fmt.Sprint(want.Version)}
	case prev.Tool != want.Tool:
		return &DriftError{Field: "tool", Have: prev.Tool, Want: want.Tool}
	case prev.Seed != want.Seed:
		return &DriftError{Field: "seed",
			Have: fmt.Sprint(prev.Seed), Want: fmt.Sprint(want.Seed)}
	case prev.ConfigHash != want.ConfigHash:
		return &DriftError{Field: "config", Have: prev.ConfigHash, Want: want.ConfigHash}
	}
	return nil
}

// loadCheckpoint restores completed units from an existing checkpoint. A
// torn final line — the signature of a crash mid-append — is dropped (that
// unit simply reruns); corruption anywhere else is an error. Quarantine
// records are not treated as completed: a resumed run retries them.
func (r *Run) loadCheckpoint(path string) error {
	data, err := r.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runctl: checkpoint: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			for _, rest := range lines[i+1:] {
				if len(bytes.TrimSpace(rest)) != 0 {
					return fmt.Errorf("runctl: corrupt checkpoint record %d in %s: %w",
						i+1, path, err)
				}
			}
			break // torn tail write from a crash; the unit reruns
		}
		if rec.Quarantine {
			continue
		}
		r.done[rec.Unit] = rec.Data
	}
	r.loaded = len(r.done)
	return nil
}

func (r *Run) initMetrics(reg *obs.Registry) {
	r.completed = reg.Counter(MetricUnitsCompleted)
	r.skipped = reg.Counter(MetricUnitsSkipped)
	r.quarantined = reg.Counter(MetricUnitsQuarantined)
	// 16us .. ~131ms upper bounds: an append+fsync lands mid-range on
	// ordinary disks and in the first buckets on fast ones.
	r.flushLat = reg.Histogram(MetricFlushLatency, obs.ExpBuckets(16, 2, 14))
}

// Context returns the run's context (context.Background for a nil Run).
func (r *Run) Context() context.Context {
	if r == nil || r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// Dir returns the run directory ("" when not checkpointing).
func (r *Run) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Err returns nil while the run may continue, or an error wrapping
// ErrInterrupted once the context is canceled or past its deadline.
// Engines call this between work units and drain when it is non-nil.
func (r *Run) Err() error {
	if r == nil || r.ctx == nil {
		return nil
	}
	if err := r.ctx.Err(); err != nil {
		return fmt.Errorf("%w (%v)", ErrInterrupted, err)
	}
	return nil
}

// Loaded returns how many completed units the checkpoint held when the run
// was opened (0 for fresh runs).
func (r *Run) Loaded() int {
	if r == nil {
		return 0
	}
	return r.loaded
}

// Lookup reports whether unit already completed in a previous run and, if
// so, unmarshals its checkpointed result into out (out may be nil to only
// test membership). Undecodable records are treated as not done, so the
// unit reruns rather than poisoning the merge.
func (r *Run) Lookup(unit string, out any) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	data, ok := r.done[unit]
	r.mu.Unlock()
	if !ok {
		return false
	}
	if out != nil && json.Unmarshal(data, out) != nil {
		return false
	}
	r.skipped.Inc()
	return true
}

// Complete records unit's result as durably done: the checkpoint record is
// appended and fsynced before Complete returns, so a crash at any later
// instant cannot lose the unit. result must JSON-round-trip exactly (the
// engines' count structs do), which is what makes a resumed merge
// byte-identical to an uninterrupted run.
func (r *Run) Complete(unit string, result any) error {
	if r == nil {
		return nil
	}
	rec := record{Unit: unit}
	if result != nil {
		data, err := json.Marshal(result)
		if err != nil {
			return fmt.Errorf("runctl: checkpoint %q: %w", unit, err)
		}
		rec.Data = data
	}
	r.mu.Lock()
	r.done[unit] = rec.Data
	err := r.appendLocked(rec)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	r.completed.Inc()
	if r.Hooks.AfterUnit != nil {
		r.Hooks.AfterUnit(unit)
	}
	return nil
}

// appendLocked writes one checkpoint record with fsync durability.
func (r *Run) appendLocked(rec record) error {
	if r.file == nil || r.closed {
		return nil
	}
	start := time.Now()
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runctl: checkpoint %q: %w", rec.Unit, err)
	}
	if _, err := r.file.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("runctl: checkpoint append: %w", err)
	}
	if err := r.file.Sync(); err != nil {
		return fmt.Errorf("runctl: checkpoint fsync: %w", err)
	}
	r.flushLat.Observe(float64(time.Since(start).Microseconds()))
	return nil
}

// Protect runs one work unit with panic isolation: a panic inside fn is
// recovered, recorded as a quarantined unit in the checkpoint and the obs
// failure ring, and returned as a *PanicError — the engine skips the unit
// and keeps going. On a nil Run fn runs unprotected, preserving crash-loud
// behavior for bare library use.
func (r *Run) Protect(unit string, fn func() error) (err error) {
	if r == nil {
		return fn()
	}
	defer func() {
		if v := recover(); v != nil {
			pe := &PanicError{Unit: unit, Value: v, Stack: debug.Stack()}
			r.recordQuarantine(pe)
			err = pe
		}
	}()
	if r.Hooks.BeforeUnit != nil {
		r.Hooks.BeforeUnit(unit)
	}
	return fn()
}

func (r *Run) recordQuarantine(pe *PanicError) {
	q := Quarantine{Unit: pe.Unit, Panic: fmt.Sprint(pe.Value), Stack: string(pe.Stack)}
	r.mu.Lock()
	r.quarantine = append(r.quarantine, q)
	_ = r.appendLocked(record{
		Unit: q.Unit, Quarantine: true, Panic: q.Panic, Stack: q.Stack,
	})
	r.mu.Unlock()
	r.quarantined.Inc()
	r.Tracer.Failure("runctl.quarantine", map[string]any{
		"unit": q.Unit, "panic": q.Panic,
	})
}

// Quarantined returns the units isolated by Protect so far, in order.
func (r *Run) Quarantined() []Quarantine {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Quarantine(nil), r.quarantine...)
}

// FinishErr returns nil for a clean run, or a *QuarantineError naming
// every quarantined unit. Engines call it after draining all units so one
// poisoned unit surfaces at the end instead of crashing the run mid-flight.
func (r *Run) FinishErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.quarantine) == 0 {
		return nil
	}
	return &QuarantineError{Units: append([]Quarantine(nil), r.quarantine...)}
}

// Close seals the run: the manifest is rewritten atomically with the final
// unit totals and the checkpoint file is closed. Safe to call more than
// once and on a nil Run.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.file == nil {
		return nil
	}
	r.manifest.UnitsDone = len(r.done)
	r.manifest.UnitsQuarantined = len(r.quarantine)
	err := r.writeManifestLocked()
	if cerr := r.file.Close(); err == nil {
		err = cerr
	}
	r.file = nil
	return err
}

func (r *Run) writeManifestLocked() error {
	data, err := json.MarshalIndent(r.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("runctl: manifest: %w", err)
	}
	path := filepath.Join(r.dir, ManifestName)
	fsys := r.fs
	if fsys == nil {
		fsys = chaos.OS{}
	}
	if err := WriteFileAtomicFS(fsys, path, append(data, '\n'), 0o666); err != nil {
		return fmt.Errorf("runctl: manifest: %w", err)
	}
	return nil
}

// ConfigHash derives the manifest's config fingerprint from any
// JSON-marshalable description of the result-affecting configuration
// (exclude execution knobs like worker counts: they do not change
// results, so they must not block a resume).
func ConfigHash(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf("%+v", v))
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:8])
}
