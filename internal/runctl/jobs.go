package runctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"glitchlab/internal/chaos"
)

// ReadManifest loads the manifest of an existing run directory. It is how
// a supervisor (the glitchd daemon) enumerates resumable runs without
// opening them: the manifest names the tool, config hash and seed the
// checkpoint belongs to, so the caller can detect drift before committing
// to a resume.
func ReadManifest(dir string) (Manifest, error) {
	return ReadManifestFS(chaos.OS{}, dir)
}

// ReadManifestFS is ReadManifest over an explicit filesystem.
func ReadManifestFS(fsys chaos.FS, dir string) (Manifest, error) {
	var m Manifest
	data, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, fmt.Errorf("runctl: manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("runctl: corrupt manifest in %s: %w", dir, err)
	}
	return m, nil
}

// HasCheckpoint reports whether dir holds a started run — a manifest
// written by Open. A directory with a checkpoint must be reopened with
// resume=true (Open refuses it fresh); one without is opened fresh even if
// the directory itself already exists (a crash between MkdirAll and the
// first manifest write leaves exactly that state, and the run simply
// starts over).
func HasCheckpoint(dir string) bool {
	return HasCheckpointFS(chaos.OS{}, dir)
}

// HasCheckpointFS is HasCheckpoint over an explicit filesystem.
func HasCheckpointFS(fsys chaos.FS, dir string) bool {
	_, err := fsys.Stat(filepath.Join(dir, ManifestName))
	return err == nil
}

// IsNoManifest reports whether err from ReadManifest means the directory
// has no manifest at all (as opposed to a corrupt one).
func IsNoManifest(err error) bool {
	return errors.Is(err, os.ErrNotExist)
}
