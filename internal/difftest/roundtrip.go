package difftest

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"

	"glitchlab/internal/firmware"
	"glitchlab/internal/isa"
)

// Disassemble renders a program back into assembler source that
// isa.Assemble reproduces byte for byte: instructions print through
// isa.Inst.String, PC-relative branches become labels, and everything that
// is not at an instruction address (literal pools, data islands, alignment
// padding) is emitted as raw .byte directives so the layout cannot drift.
func Disassemble(prog *isa.Program) (string, error) {
	instAt := make(map[uint32]bool, len(prog.InstAddrs))
	for _, a := range prog.InstAddrs {
		instAt[a] = true
	}
	end := prog.Base + uint32(len(prog.Code))

	// First pass: collect label targets of PC-relative branches.
	labels := map[uint32]string{}
	for _, addr := range prog.InstAddrs {
		in, ok := prog.InstAt(addr)
		if !ok {
			return "", fmt.Errorf("difftest: undecodable instruction at %#x", addr)
		}
		switch in.Op {
		case isa.OpBCond, isa.OpB, isa.OpBL:
			tgt := in.BranchTarget(addr)
			if tgt < prog.Base || tgt > end {
				return "", fmt.Errorf("difftest: branch at %#x leaves the program (%#x)", addr, tgt)
			}
			labels[tgt] = fmt.Sprintf("L_%x", tgt)
		}
	}

	var sb strings.Builder
	for addr := prog.Base; addr < end; {
		if l, ok := labels[addr]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		if !instAt[addr] {
			fmt.Fprintf(&sb, "\t.byte %#x\n", prog.Code[addr-prog.Base])
			addr++
			continue
		}
		in, _ := prog.InstAt(addr)
		switch in.Op {
		case isa.OpInvalid:
			return "", fmt.Errorf("difftest: invalid encoding %#x listed as instruction at %#x", in.Raw, addr)
		case isa.OpCPS:
			// The assembler has no cps syntax; none of our tools emit it.
			return "", fmt.Errorf("difftest: cps at %#x is not round-trippable", addr)
		case isa.OpBCond:
			fmt.Fprintf(&sb, "\tb%s %s\n", in.Cond, labels[in.BranchTarget(addr)])
		case isa.OpB:
			fmt.Fprintf(&sb, "\tb %s\n", labels[in.BranchTarget(addr)])
		case isa.OpBL:
			fmt.Fprintf(&sb, "\tbl %s\n", labels[in.BranchTarget(addr)])
		default:
			fmt.Fprintf(&sb, "\t%s\n", in)
		}
		addr += uint32(in.Size)
	}
	// A branch may target the first byte past the program.
	if l, ok := labels[end]; ok {
		fmt.Fprintf(&sb, "%s:\n", l)
	}
	return sb.String(), nil
}

// CheckRoundTrip asserts the assemble → decode → disassemble → re-assemble
// fixed point on a generated program: the re-assembled bytes must equal the
// original, the instruction layout must match, and a second disassembly must
// reproduce the first text exactly.
func CheckRoundTrip(seed int64) error {
	src := NewGen(seed).Program()
	return CheckRoundTripSource(src)
}

// CheckRoundTripSource is CheckRoundTrip for explicit source.
func CheckRoundTripSource(src string) error {
	prog, err := isa.Assemble(firmware.FlashBase, src)
	if err != nil {
		return fmt.Errorf("difftest: source does not assemble: %w\n%s", err, src)
	}
	text, err := Disassemble(prog)
	if err != nil {
		return fmt.Errorf("difftest: disassembly failed: %w\nsource:\n%s", err, src)
	}
	prog2, err := isa.Assemble(prog.Base, text)
	if err != nil {
		return fmt.Errorf("difftest: disassembly does not re-assemble: %w\ndisassembly:\n%s\nsource:\n%s",
			err, text, src)
	}
	if !bytes.Equal(prog.Code, prog2.Code) {
		off := firstDiff(prog.Code, prog2.Code)
		return fmt.Errorf("difftest: round trip changed bytes at offset %#x (%#x -> %#x)\ndisassembly:\n%s\nsource:\n%s",
			off, at(prog.Code, off), at(prog2.Code, off), text, src)
	}
	if !reflect.DeepEqual(prog.InstAddrs, prog2.InstAddrs) {
		return fmt.Errorf("difftest: round trip changed the instruction layout\ndisassembly:\n%s", text)
	}
	text2, err := Disassemble(prog2)
	if err != nil {
		return fmt.Errorf("difftest: second disassembly failed: %w", err)
	}
	if text != text2 {
		return fmt.Errorf("difftest: disassembly is not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, text2)
	}
	return nil
}

func at(b []byte, i int) byte {
	if i < len(b) {
		return b[i]
	}
	return 0
}

// notEncodable lists valid decodes with no 16-bit encoder: CPS carries
// state the decoder does not preserve and nothing in the repo emits it.
func notEncodable(op isa.Op) bool { return op == isa.OpCPS }

// CheckDecode probes isa.Decode with an arbitrary instruction word. It
// asserts the decoder's total-function contract: no panics, correct
// Size/Raw bookkeeping, every invalid encoding classified as OpInvalid, and
// encode∘decode a fixed point for everything valid.
func CheckDecode(hw, hw2 uint16) error {
	in := isa.Decode(hw, hw2)
	if isa.Is32Bit(hw) {
		if in.Size != 4 {
			return fmt.Errorf("decode(%#04x %#04x): 32-bit encoding has Size %d", hw, hw2, in.Size)
		}
		if want := uint32(hw)<<16 | uint32(hw2); in.Raw != want {
			return fmt.Errorf("decode(%#04x %#04x): Raw %#x, want %#x", hw, hw2, in.Raw, want)
		}
		switch in.Op {
		case isa.OpInvalid:
			return nil
		case isa.OpBL:
			h1, h2, err := isa.EncodeBL(int32(in.Imm))
			if err != nil {
				return fmt.Errorf("decode(%#04x %#04x): BL imm %#x does not re-encode: %v", hw, hw2, in.Imm, err)
			}
			if h1 != hw || h2 != hw2 {
				return fmt.Errorf("decode(%#04x %#04x): BL re-encodes to %#04x %#04x", hw, hw2, h1, h2)
			}
			return nil
		default:
			return fmt.Errorf("decode(%#04x %#04x): unexpected 32-bit op %v", hw, hw2, in.Op)
		}
	}
	if in.Size != 2 || in.Raw != uint32(hw) {
		return fmt.Errorf("decode(%#04x): Size/Raw bookkeeping wrong (%d, %#x)", hw, in.Size, in.Raw)
	}
	if in.Op == isa.OpInvalid || notEncodable(in.Op) {
		return nil
	}
	stripped := in
	stripped.Size, stripped.Raw = 0, 0
	enc, err := isa.Encode(stripped)
	if err != nil {
		return fmt.Errorf("decode(%#04x): valid decode %v does not encode: %v", hw, in, err)
	}
	re := isa.Decode(enc, 0)
	re.Size, re.Raw = 0, 0
	if re != stripped {
		return fmt.Errorf("decode(%#04x): encode∘decode not a fixed point: %v -> %#04x -> %v",
			hw, stripped, enc, re)
	}
	return nil
}
