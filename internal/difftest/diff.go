package difftest

import (
	"bytes"
	"errors"
	"fmt"

	"glitchlab/internal/emu"
	"glitchlab/internal/firmware"
	"glitchlab/internal/isa"
	"glitchlab/internal/pipeline"
)

// DefaultMaxSteps bounds differential runs. Generated programs are
// forward-branching and finish within a few hundred instructions; the bound
// only trips when a wild store rewrites code into a backward loop, and then
// it trips both executors at the same retired instruction.
const DefaultMaxSteps = 20_000

// Execution captures every observable of one glitch-free run.
type Execution struct {
	Outcome string // "stop", "hang", or "fault:<kind>"
	Regs    [16]uint32
	Flags   isa.Flags
	Cycles  uint64
	Steps   uint64

	TriggerCount int
	FlashWrites  int

	RAM   []byte
	Flash []byte
	GPIO  []byte
}

func regionBytes(b *firmware.Board, base uint32) []byte {
	r, ok := b.Mem.Region(base, 4)
	if !ok {
		return nil
	}
	out := make([]byte, len(r.Data))
	copy(out, r.Data)
	return out
}

func capture(b *firmware.Board, outcome string) Execution {
	return Execution{
		Outcome:      outcome,
		Regs:         b.CPU.R,
		Flags:        b.CPU.Flags,
		Cycles:       b.CPU.Cycles,
		Steps:        b.CPU.Steps,
		TriggerCount: b.TriggerCount,
		FlashWrites:  b.FlashWrites,
		RAM:          regionBytes(b, firmware.RAMBase),
		Flash:        regionBytes(b, firmware.FlashBase),
		GPIO:         regionBytes(b, firmware.GPIOBase),
	}
}

// RunFunctional executes prog glitch-free on the bare functional emulator
// (emu.CPU.Run on a standard board) until the program's "stop" symbol, a
// fault, or maxSteps retired instructions.
func RunFunctional(prog *isa.Program, maxSteps uint64) (Execution, error) {
	b, err := firmware.NewBoard()
	if err != nil {
		return Execution{}, err
	}
	if err := b.Load(prog); err != nil {
		return Execution{}, err
	}
	stop, ok := prog.SymbolAddr("stop")
	if !ok {
		return Execution{}, errors.New("difftest: program has no stop symbol")
	}
	b.Reset()
	runErr := b.CPU.Run(stop, maxSteps)
	outcome := "stop"
	switch {
	case runErr == nil:
	case errors.Is(runErr, emu.ErrStepLimit):
		outcome = "hang"
	default:
		var f *emu.Fault
		if !errors.As(runErr, &f) {
			return Execution{}, fmt.Errorf("difftest: unexpected run error: %w", runErr)
		}
		outcome = "fault:" + f.Kind.String()
	}
	return capture(b, outcome), nil
}

// RunPipeline executes prog glitch-free through the three-stage pipeline
// model (pipeline.Machine with a nil injector), cut at the same
// retired-instruction bound as RunFunctional.
func RunPipeline(prog *isa.Program, maxSteps uint64) (Execution, error) {
	b, err := firmware.NewBoard()
	if err != nil {
		return Execution{}, err
	}
	if err := b.Load(prog); err != nil {
		return Execution{}, err
	}
	stop, ok := prog.SymbolAddr("stop")
	if !ok {
		return Execution{}, errors.New("difftest: program has no stop symbol")
	}
	m := pipeline.NewMachine(b)
	m.AddStop(stop, "stop")
	m.MaxSteps = maxSteps
	b.Reset()
	r := m.Run(1 << 62) // cycle budget effectively infinite; steps bound the run
	var outcome string
	switch r.Reason {
	case pipeline.StopHit:
		outcome = "stop"
	case pipeline.StopHung:
		outcome = "hang"
	case pipeline.StopFault:
		outcome = "fault:" + r.Fault.String()
	default:
		return Execution{}, fmt.Errorf("difftest: unexpected stop reason %v", r.Reason)
	}
	return capture(b, outcome), nil
}

// Diff compares two executions observable by observable and returns a
// human-readable list of divergences (empty when the runs agree).
func Diff(a, b Execution) []string {
	var out []string
	if a.Outcome != b.Outcome {
		// Different outcome classes mean different cut points, so the
		// machine state is not comparable beyond this headline.
		return []string{fmt.Sprintf("outcome: %s vs %s", a.Outcome, b.Outcome)}
	}
	for i, v := range a.Regs {
		if w := b.Regs[i]; v != w {
			out = append(out, fmt.Sprintf("%s: %#x vs %#x", isa.Reg(i), v, w))
		}
	}
	if a.Flags != b.Flags {
		out = append(out, fmt.Sprintf("flags: %v vs %v", a.Flags, b.Flags))
	}
	if a.Cycles != b.Cycles {
		out = append(out, fmt.Sprintf("cycles: %d vs %d", a.Cycles, b.Cycles))
	}
	if a.Steps != b.Steps {
		out = append(out, fmt.Sprintf("steps: %d vs %d", a.Steps, b.Steps))
	}
	if a.TriggerCount != b.TriggerCount {
		out = append(out, fmt.Sprintf("triggers: %d vs %d", a.TriggerCount, b.TriggerCount))
	}
	if a.FlashWrites != b.FlashWrites {
		out = append(out, fmt.Sprintf("flash writes: %d vs %d", a.FlashWrites, b.FlashWrites))
	}
	for _, reg := range []struct {
		name string
		a, b []byte
	}{{"ram", a.RAM, b.RAM}, {"flash", a.Flash, b.Flash}, {"gpio", a.GPIO, b.GPIO}} {
		if !bytes.Equal(reg.a, reg.b) {
			out = append(out, fmt.Sprintf("%s contents differ at offset %#x",
				reg.name, firstDiff(reg.a, reg.b)))
		}
	}
	return out
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// CheckEmuVsPipeline generates the seeded program, runs it glitch-free on
// both executors, and returns an error describing any divergence together
// with the offending source.
func CheckEmuVsPipeline(seed int64) error {
	src := NewGen(seed).Program()
	return CheckEmuVsPipelineSource(src)
}

// CheckEmuVsPipelineSource is CheckEmuVsPipeline for explicit assembly
// source with a "stop" symbol (used to pin minimized regressions).
func CheckEmuVsPipelineSource(src string) error {
	prog, err := isa.Assemble(firmware.FlashBase, src)
	if err != nil {
		return fmt.Errorf("difftest: generated program does not assemble: %w\n%s", err, src)
	}
	fn, err := RunFunctional(prog, DefaultMaxSteps)
	if err != nil {
		return err
	}
	pl, err := RunPipeline(prog, DefaultMaxSteps)
	if err != nil {
		return err
	}
	if d := Diff(fn, pl); len(d) != 0 {
		return fmt.Errorf("difftest: emu and pipeline diverged glitch-free:\n  %s\nsource:\n%s",
			joinLines(d), src)
	}
	return nil
}

func joinLines(xs []string) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "\n  "
		}
		s += x
	}
	return s
}
