package difftest

import (
	"strings"
	"testing"

	"glitchlab/internal/firmware"
	"glitchlab/internal/isa"
)

// TestGenProgramsAssemble checks every generated program is valid input for
// the assembler and defines the stop symbol the harnesses run to.
func TestGenProgramsAssemble(t *testing.T) {
	n := int64(400)
	if testing.Short() {
		n = 60
	}
	for seed := int64(0); seed < n; seed++ {
		src := NewGen(seed).Program()
		prog, err := isa.Assemble(firmware.FlashBase, src)
		if err != nil {
			t.Fatalf("seed %d does not assemble: %v\n%s", seed, err, src)
		}
		if _, ok := prog.SymbolAddr("stop"); !ok {
			t.Fatalf("seed %d has no stop symbol", seed)
		}
	}
}

// TestGenDeterminism locks the generator to its seed: identical seeds must
// yield byte-identical programs across independent Gen values. This is the
// regression guard for the no-shared-rand rule — all difftest randomness
// flows through explicit rand.Rand values, never the process-global source.
func TestGenDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := NewGen(seed), NewGen(seed)
		for call := 0; call < 3; call++ {
			pa, pb := a.Program(), b.Program()
			if pa != pb {
				t.Fatalf("seed %d call %d: two generators disagree", seed, call)
			}
		}
	}
	if NewGen(1).Program() == NewGen(2).Program() {
		t.Fatal("distinct seeds produced identical programs")
	}
	orig := BaseSeed()
	defer Seed(orig)
	Seed(42)
	if BaseSeed() != 42 {
		t.Fatalf("Seed knob did not stick: %d", BaseSeed())
	}
}

// TestGenGroupCoverage accumulates unit-group counts across a window of
// programs and checks every encoding group the generator advertises is
// actually emitted — a weight accidentally set to zero fails here.
func TestGenGroupCoverage(t *testing.T) {
	counts := map[string]int{}
	g := NewGen(7)
	for i := 0; i < 60; i++ {
		g.Program()
		for name, c := range g.Groups() {
			counts[name] += c
		}
	}
	for _, u := range units {
		if counts[u.name] == 0 {
			t.Errorf("unit group %q never generated", u.name)
		}
	}
	if len(counts) != len(units) {
		t.Errorf("generated %d distinct groups, generator defines %d", len(counts), len(units))
	}
}

// TestGenOutcomeMix runs a window of generated programs on the functional
// emulator and checks the corpus stays useful: a solid majority must run to
// "stop" (deep differential coverage), while faults must stay represented.
func TestGenOutcomeMix(t *testing.T) {
	if testing.Short() {
		t.Skip("outcome census is a long test")
	}
	outcomes := map[string]int{}
	const n = 500
	for seed := int64(0); seed < n; seed++ {
		prog, err := isa.Assemble(firmware.FlashBase, NewGen(seed).Program())
		if err != nil {
			t.Fatal(err)
		}
		ex, err := RunFunctional(prog, DefaultMaxSteps)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[ex.Outcome]++
	}
	if stops := outcomes["stop"]; stops < n/2 {
		t.Errorf("only %d/%d programs reach stop; generator hazard rate regressed: %v",
			stops, n, outcomes)
	}
	faults := 0
	for k, v := range outcomes {
		if strings.HasPrefix(k, "fault:") {
			faults += v
		}
	}
	if faults == 0 {
		t.Error("no generated program faults; fault classification is uncovered")
	}
}
