package difftest

import "testing"

// The TestDiffCorpus* tests are the deterministic face of the fuzz
// harnesses: a fixed window of seeds, offset by the Seed knob (or the
// GLITCHLAB_DIFFTEST_SEED environment variable), replays the same checks
// the fuzzers explore, so plain `go test` exercises every oracle and a
// failing fuzz seed can be reproduced byte-for-byte by pinning the base.

func corpusSize(full, short int, t *testing.T) int64 {
	if testing.Short() {
		return int64(short)
	}
	_ = full
	return int64(full)
}

func TestDiffCorpusEmuVsPipeline(t *testing.T) {
	n := corpusSize(300, 40, t)
	base := BaseSeed()
	for i := int64(0); i < n; i++ {
		if err := CheckEmuVsPipeline(base + i); err != nil {
			t.Fatalf("base %d + %d:\n%v", base, i, err)
		}
	}
}

func TestDiffCorpusRoundTrip(t *testing.T) {
	n := corpusSize(300, 40, t)
	base := BaseSeed()
	for i := int64(0); i < n; i++ {
		if err := CheckRoundTrip(base + i); err != nil {
			t.Fatalf("base %d + %d:\n%v", base, i, err)
		}
	}
}

// TestDiffCorpusDecode sweeps the full 16-bit space (the decoder is cheap
// enough to probe exhaustively) plus a slice of the 32-bit space.
func TestDiffCorpusDecode(t *testing.T) {
	for hw := 0; hw <= 0xFFFF; hw++ {
		if err := CheckDecode(uint16(hw), 0xF800); err != nil {
			t.Fatal(err)
		}
	}
	if testing.Short() {
		return
	}
	for _, hw := range []uint16{0xE800, 0xF000, 0xF400, 0xF7FF, 0xF800, 0xFFFF} {
		for hw2 := 0; hw2 <= 0xFFFF; hw2++ {
			if err := CheckDecode(hw, uint16(hw2)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDiffCorpusReplay pins trigger-point snapshot/replay equivalence over
// the committed corpus window: every seeded program, under every defense
// configuration and a set of synthetic injectors, must behave identically
// whether the prologue is re-simulated or replayed from the snapshot.
func TestDiffCorpusReplay(t *testing.T) {
	n := corpusSize(12, 3, t)
	base := BaseSeed()
	for i := int64(0); i < n; i++ {
		if err := CheckReplayEquivalence(base + i); err != nil {
			t.Fatalf("base %d + %d:\n%v", base, i, err)
		}
	}
}

func TestDiffCorpusTransparency(t *testing.T) {
	n := corpusSize(12, 3, t)
	base := BaseSeed()
	for i := int64(0); i < n; i++ {
		if err := CheckTransparency(base + i); err != nil {
			t.Fatalf("base %d + %d:\n%v", base, i, err)
		}
	}
}

func TestDiffCorpusRS(t *testing.T) {
	max := 64
	if testing.Short() {
		max = 16
	}
	for count := 2; count <= max; count++ {
		for _, mask := range []uint32{1, 0x80000001, 0x7F, 0xFFFFFFFF, 0x01010101} {
			if err := CheckRS(count, uint16(count*31), mask); err != nil {
				t.Fatalf("count %d mask %#x: %v", count, mask, err)
			}
		}
	}
}
