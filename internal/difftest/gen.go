package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"glitchlab/internal/firmware"
)

// Gen is a seeded generator of valid, terminating Thumb-16 assembly
// programs. Every encoding group of internal/isa is represented (shifts,
// add/sub, ALU register ops, hi-register ops, every load/store form,
// SP arithmetic, extend/reverse, push/pop, LDM/STM, literal loads, ADR,
// branches, BL, BX/BLX, and the fault-raising BKPT/SVC/UDF), with weights
// favouring the data-processing and memory groups the paper's campaigns
// exercise most.
//
// Termination is guaranteed by construction rather than by budget:
//
//   - every label branch (b, b<cond>, bl) targets a strictly later label;
//   - register-indirect control flow (bx/blx) only ever goes through r7,
//     which is loaded with the address of the final "stop" label during
//     init and excluded as a destination everywhere else;
//   - pop never includes pc, and hi-register writes never target pc.
//
// Memory operands are mostly materialized valid SRAM addresses, with a
// deliberate minority of GPIO, flash and unmapped targets so that fault
// classification (bad read/write, unaligned) is exercised too. Programs may
// therefore end at "stop", in a fault, or — if a wild store rewrites
// upcoming code into a backward branch — not at all; the differential
// harness cuts both executors at the same retired-instruction count, so all
// three outcomes remain comparable.
type Gen struct {
	rng *rand.Rand

	b          strings.Builder
	n          int // body units in the current program
	unit       int
	pending    int // literal-pool entries awaiting a flush
	sinceFlush int
	islandN    int
	poolN      int
	groups     map[string]int
}

// NewGen returns a generator seeded with s. The same seed always yields the
// same program sequence.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Groups reports how many units of each encoding group the most recently
// generated program contains.
func (g *Gen) Groups() map[string]int { return g.groups }

func (g *Gen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *Gen) low() string { return fmt.Sprintf("r%d", g.rng.Intn(7)) }
func (g *Gen) hi() string  { return [6]string{"r8", "r9", "r10", "r11", "r12", "lr"}[g.rng.Intn(6)] }
func (g *Gen) anyGP() string {
	if g.rng.Intn(2) == 0 {
		return g.low()
	}
	return g.hi()
}

func pick[T any](rng *rand.Rand, xs ...T) T { return xs[rng.Intn(len(xs))] }

// unitGen is one weighted program-unit producer.
type unitGen struct {
	name   string
	weight int
	emit   func(g *Gen)
}

var units = []unitGen{
	{"shift-imm", 5, (*Gen).unitShiftImm},
	{"addsub3", 5, (*Gen).unitAddSub3},
	{"imm8", 6, (*Gen).unitImm8},
	{"alu", 8, (*Gen).unitALU},
	{"hireg", 4, (*Gen).unitHiReg},
	{"extend", 3, (*Gen).unitExtend},
	{"mem-reg", 5, (*Gen).unitMemReg},
	{"mem-imm", 5, (*Gen).unitMemImm},
	{"sp-mem", 3, (*Gen).unitSPMem},
	{"sp-adjust", 1, (*Gen).unitSPAdjust},
	{"push-pop", 3, (*Gen).unitPushPop},
	{"ldm-stm", 2, (*Gen).unitLdmStm},
	{"island", 3, (*Gen).unitIsland},
	{"lit-load", 3, (*Gen).unitLitLoad},
	{"branch", 6, (*Gen).unitBranch},
	{"fault", 1, (*Gen).unitFault},
	{"hint", 1, (*Gen).unitHint},
}

var unitWeightTotal = func() int {
	t := 0
	for _, u := range units {
		t += u.weight
	}
	return t
}()

// Program generates a fresh random program. Successive calls on the same
// Gen continue the seeded stream, so a (seed, call-index) pair identifies a
// program exactly.
func (g *Gen) Program() string {
	g.b.Reset()
	g.groups = map[string]int{}
	g.unit = 0
	g.pending = 0
	g.sinceFlush = 0
	g.n = 8 + g.rng.Intn(72)

	// Init: stop pointer in r7, a real stack frame, defined low registers,
	// and a few defined hi registers.
	g.line("start:")
	g.line("\tldr r7, =stop")
	g.pending++
	g.line("\tsub sp, #%d", 128+4*g.rng.Intn(96))
	// Word-aligned init values: low registers double as offsets and bases,
	// and an unaligned seed would fault the first word access it reaches.
	for r := 0; r < 7; r++ {
		g.line("\tmovs r%d, #%d", r, 4*g.rng.Intn(64))
	}
	for _, h := range []string{"r8", "r9", "r10", "r11", "r12"} {
		g.line("\tmov %s, r%d", h, g.rng.Intn(7))
	}

	for g.unit < g.n {
		g.line("L%d:", g.unit)
		u := g.pickUnit()
		u.emit(g)
		g.groups[u.name]++
		g.unit++
		g.sinceFlush++
		// Keep every pending "ldr rd, =imm" within LDRLit's 1020-byte
		// reach by flushing the pool over a jumped gap regularly.
		if g.pending > 0 && g.sinceFlush >= 10 {
			g.flushPool()
		}
	}
	g.line("L%d:", g.n)
	g.line("\tb stop")
	g.line("stop:")
	return g.b.String()
}

func (g *Gen) pickUnit() unitGen {
	v := g.rng.Intn(unitWeightTotal)
	for _, u := range units {
		v -= u.weight
		if v < 0 {
			return u
		}
	}
	return units[len(units)-1]
}

func (g *Gen) flushPool() {
	g.line("\tb Lp%d", g.poolN)
	g.line("\t.pool")
	g.line("Lp%d:", g.poolN)
	g.poolN++
	g.pending = 0
	g.sinceFlush = 0
}

func (g *Gen) unitShiftImm() {
	g.line("\t%s %s, %s, #%d",
		pick(g.rng, "lsls", "lsrs", "asrs"), g.low(), g.low(), g.rng.Intn(32))
}

func (g *Gen) unitAddSub3() {
	mnem := pick(g.rng, "adds", "subs")
	if g.rng.Intn(2) == 0 {
		g.line("\t%s %s, %s, %s", mnem, g.low(), g.low(), g.low())
	} else {
		g.line("\t%s %s, %s, #%d", mnem, g.low(), g.low(), g.rng.Intn(8))
	}
}

func (g *Gen) unitImm8() {
	g.line("\t%s %s, #%d",
		pick(g.rng, "movs", "cmp", "adds", "subs"), g.low(), g.rng.Intn(256))
}

func (g *Gen) unitALU() {
	switch g.rng.Intn(4) {
	case 0:
		g.line("\t%s %s, %s", pick(g.rng, "tst", "cmn", "cmp"), g.low(), g.low())
	case 1:
		g.line("\trsbs %s, %s, #0", g.low(), g.low())
	default:
		g.line("\t%s %s, %s",
			pick(g.rng, "ands", "eors", "lsls", "lsrs", "asrs", "adcs",
				"sbcs", "rors", "orrs", "muls", "bics", "mvns"),
			g.low(), g.low())
	}
}

func (g *Gen) unitHiReg() {
	// Destinations exclude pc (no wild branches), sp (keep the stack
	// usable for longer runs) and r7 (the reserved stop pointer).
	switch g.rng.Intn(3) {
	case 0:
		g.line("\tadd %s, %s", g.anyGP(), pick(g.rng, g.low(), g.hi(), "sp"))
	case 1:
		g.line("\tmov %s, %s", g.anyGP(), pick(g.rng, g.low(), g.hi(), "sp", "pc"))
	default:
		g.line("\tcmp %s, %s", g.hi(), g.anyGP())
	}
}

func (g *Gen) unitExtend() {
	g.line("\t%s %s, %s",
		pick(g.rng, "sxth", "sxtb", "uxth", "uxtb", "rev", "rev16", "revsh"),
		g.low(), g.low())
}

// materialAddr returns a random data address aligned for a width-byte
// access: mostly valid SRAM, sometimes GPIO or flash (self-modification and
// programming-stall territory). All of these are mapped; deliberately bad
// addresses live in unitFault so the expected hazard count per program
// stays below one and most programs run to completion.
func (g *Gen) materialAddr(width uint32) uint32 {
	switch g.rng.Intn(16) {
	case 0, 1:
		return firmware.GPIOBase + uint32(g.rng.Intn(0x400))&^(width-1)
	case 2:
		return firmware.FlashBase + 0x8000 + uint32(g.rng.Intn(0x1000))&^(width-1)
	default:
		return firmware.RAMBase + uint32(g.rng.Intn(firmware.RAMSize-256))&^(width-1)
	}
}

// materialBase loads a usable base address into a low register.
func (g *Gen) materialBase(width uint32) string {
	rb := g.low()
	g.line("\tldr %s, =%#x", rb, g.materialAddr(width))
	g.pending++
	return rb
}

func memWidth(mnem string) uint32 {
	switch mnem {
	case "str", "ldr":
		return 4
	case "strh", "ldrh", "ldrsh":
		return 2
	}
	return 1
}

func (g *Gen) unitMemReg() {
	mnem := pick(g.rng, "str", "strh", "strb", "ldr", "ldrh", "ldrb", "ldrsb", "ldrsh")
	w := memWidth(mnem)
	rb := g.materialBase(w)
	ri := g.low()
	for ri == rb {
		ri = g.low()
	}
	g.line("\tmovs %s, #%d", ri, int(w)*g.rng.Intn(256/int(w)))
	g.line("\t%s %s, [%s, %s]", mnem, g.low(), rb, ri)
}

func (g *Gen) unitMemImm() {
	switch g.rng.Intn(3) {
	case 0:
		g.line("\t%s %s, [%s, #%d]", pick(g.rng, "str", "ldr"),
			g.low(), g.materialBase(4), g.rng.Intn(32)*4)
	case 1:
		g.line("\t%s %s, [%s, #%d]", pick(g.rng, "strh", "ldrh"),
			g.low(), g.materialBase(2), g.rng.Intn(32)*2)
	default:
		g.line("\t%s %s, [%s, #%d]", pick(g.rng, "strb", "ldrb"),
			g.low(), g.materialBase(1), g.rng.Intn(32))
	}
}

func (g *Gen) unitSPMem() {
	g.line("\t%s %s, [sp, #%d]", pick(g.rng, "str", "ldr"), g.low(), g.rng.Intn(24)*4)
}

func (g *Gen) unitSPAdjust() {
	g.line("\t%s sp, #%d", pick(g.rng, "add", "sub"), g.rng.Intn(16)*4)
}

// regList builds a non-empty register list from r0-r6.
func (g *Gen) regList() string {
	var regs []string
	for r := 0; r < 7; r++ {
		if g.rng.Intn(4) == 0 {
			regs = append(regs, fmt.Sprintf("r%d", r))
		}
	}
	if len(regs) == 0 {
		regs = []string{fmt.Sprintf("r%d", g.rng.Intn(7))}
	}
	return strings.Join(regs, ", ")
}

func (g *Gen) unitPushPop() {
	// Push-biased: unbalanced pops walk SP up past StackTop and off the
	// RAM region, faulting most long programs before they get anywhere.
	if g.rng.Intn(3) != 0 {
		list := g.regList()
		if g.rng.Intn(3) == 0 {
			list += ", lr"
		}
		g.line("\tpush {%s}", list)
	} else {
		g.line("\tpop {%s}", g.regList())
	}
}

func (g *Gen) unitLdmStm() {
	// Keep the base out of its own transfer list; writeback rules for that
	// case differ across ARM revisions and the campaigns never emit it.
	rb := g.materialBase(4)
	var regs []string
	for r := 0; r < 7; r++ {
		name := fmt.Sprintf("r%d", r)
		if name != rb && g.rng.Intn(4) == 0 {
			regs = append(regs, name)
		}
	}
	if len(regs) == 0 {
		regs = append(regs, fmt.Sprintf("r%d", (int(rb[1]-'0')+1)%7))
	}
	g.line("\t%s %s!, {%s}", pick(g.rng, "stmia", "ldmia"), rb, strings.Join(regs, ", "))
}

// unitIsland emits a jumped-over data word plus the pc-relative ways of
// addressing it (ADR and label-form LDR literal).
func (g *Gen) unitIsland() {
	k := g.islandN
	g.islandN++
	used := false
	if g.rng.Intn(2) == 0 {
		g.line("\tadr %s, Ld%d", g.low(), k)
		used = true
	}
	if !used || g.rng.Intn(2) == 0 {
		g.line("\tldr %s, Ld%d", g.low(), k)
	}
	g.line("\tb Ls%d", k)
	g.line("\t.align 4")
	g.line("Ld%d:\t.word %#x", k, g.rng.Uint32())
	if g.rng.Intn(2) == 0 {
		g.line("\t.word %#x", g.rng.Uint32())
	}
	g.line("Ls%d:", k)
}

func (g *Gen) unitLitLoad() {
	g.line("\tldr %s, =%#x", g.low(), g.rng.Uint32())
	g.pending++
}

func (g *Gen) unitBranch() {
	if g.rng.Intn(12) == 0 {
		// Register-indirect exit through the reserved stop pointer.
		g.line("\t%s r7", pick(g.rng, "bx", "blx"))
		return
	}
	// Forward-only label branches; +6 units stays well inside the
	// conditional branch's +254-byte reach.
	j := g.unit + 1 + g.rng.Intn(6)
	if j > g.n {
		j = g.n
	}
	switch g.rng.Intn(4) {
	case 0:
		g.line("\tb L%d", j)
	case 1:
		g.line("\tbl L%d", j)
	default:
		conds := []string{"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
			"hi", "ls", "ge", "lt", "gt", "le"}
		g.line("\tb%s L%d", pick(g.rng, conds...), j)
	}
}

// unitFault is the one deliberate hazard: an exception-raising instruction
// or a load/store with a bad address. Its weight keeps the expected hazard
// count per program below one, so most programs still reach "stop" while
// every fault class stays represented in the corpus.
func (g *Gen) unitFault() {
	switch g.rng.Intn(4) {
	case 0:
		g.line("\t%s #%d", pick(g.rng, "bkpt", "svc", "udf"), g.rng.Intn(256))
	case 1:
		// Wild base: whatever the program computed, usually unmapped.
		rb := g.low()
		g.line("\t%s %s, [%s, #%d]", pick(g.rng, "ldr", "str"), g.low(), rb, g.rng.Intn(8)*4)
	case 2:
		rb := g.low()
		g.line("\tldr %s, =%#x", rb, 0x6000_0000+uint32(g.rng.Intn(0x1000)))
		g.pending++
		g.line("\t%s %s, [%s]", pick(g.rng, "ldr", "str", "ldrb", "strb"), g.low(), rb)
	default:
		rb := g.low()
		g.line("\tldr %s, =%#x", rb,
			firmware.RAMBase+uint32(g.rng.Intn(firmware.RAMSize-256))|uint32(1+g.rng.Intn(3)))
		g.pending++
		g.line("\t%s %s, [%s]", pick(g.rng, "ldr", "str", "ldrh", "strh"), g.low(), rb)
	}
}

func (g *Gen) unitHint() {
	g.line("\tnop")
}
