package difftest

import (
	"fmt"

	"glitchlab/internal/core"
	"glitchlab/internal/isa"
	"glitchlab/internal/pipeline"
)

// replayBudget is the cycle budget for replay-equivalence runs. MaxSteps
// does the real bounding (it cuts full and replayed runs at the same
// retired instruction); the cycle budget only has to be large enough that
// flash-programming stalls cannot trip it asymmetrically.
const replayBudget = 500_000_000

// replayInjectors returns the synthetic glitch plans the equivalence check
// probes: nothing, an issue-suppression, a sustained instruction-corruption
// burst, and a register corruption at the window start. They exercise every
// dispatch path of the pipeline's glitch mapping without depending on the
// glitcher's physics model.
func replayInjectors() []pipeline.Injector {
	return []pipeline.Injector{
		nil, // clean replay
		func(rel, window int) (pipeline.Event, bool) {
			if rel == 2 && window == 0 {
				return pipeline.Event{Kind: pipeline.EventSkip}, true
			}
			return pipeline.Event{}, false
		},
		func(rel, window int) (pipeline.Event, bool) {
			if rel >= 1 && rel <= 4 {
				return pipeline.Event{Kind: pipeline.EventExecCorrupt, InstMask: 0x0840}, true
			}
			return pipeline.Event{}, false
		},
		func(rel, window int) (pipeline.Event, bool) {
			if rel == 0 {
				return pipeline.Event{Kind: pipeline.EventRegCorrupt, Reg: isa.R3, DataMask: 0xFF}, true
			}
			return pipeline.Event{}, false
		},
	}
}

// runReason renders a pipeline result's stop the way Execution.Outcome does.
func runReason(r pipeline.Result) string {
	switch r.Reason {
	case pipeline.StopHit:
		return "stop:" + r.Tag
	case pipeline.StopHung:
		return "hang"
	default:
		return fmt.Sprintf("fault:%v", r.Fault)
	}
}

// CheckReplayEquivalence compiles the seeded mini-C program under every
// defense configuration and asserts trigger-point snapshot/replay is
// indistinguishable from full from-reset runs: for each synthetic injector,
// a fresh full run and a replayed run must agree on every observable the
// glitch-free differential oracle compares — stop reason, registers, flags,
// cycle/step counters, trigger bookkeeping and the complete contents of
// RAM, flash and GPIO. Each snapshot is replayed twice per injector set, so
// a restore that corrupts its own snapshot cannot pass.
func CheckReplayEquivalence(seed int64) error {
	src := GenMiniC(seed)
	for i, cfg := range core.DefenseConfigs("state") {
		name := cfg.Name()
		res, err := core.Compile(src, cfg)
		if err != nil {
			return fmt.Errorf("difftest: %s build failed: %w\nsource:\n%s", name, err, src)
		}
		// Full runs get a fresh machine each: a replayed attempt restores
		// the first boot's state exactly, while a re-Reset board keeps its
		// flash — the random-delay defense persists its PRNG seed there, so
		// successive boots of one board legitimately time differently. The
		// equivalence claim is against a full run from the same initial
		// conditions.
		newFull := func() (*pipeline.Machine, error) {
			m, err := core.NewMachine(res.Image)
			if err != nil {
				return nil, err
			}
			m.MaxSteps = DefaultMaxSteps
			return m, nil
		}
		rep, err := core.NewMachine(res.Image)
		if err != nil {
			return err
		}
		rep.MaxSteps = DefaultMaxSteps

		snap := rep.SnapshotAtTrigger(replayBudget)
		if snap == nil {
			// The program never raises its trigger (or halts first); a
			// full clean run must agree, otherwise the snapshot prologue
			// diverged from the real machine.
			full, err := newFull()
			if err != nil {
				return err
			}
			if r := full.Run(replayBudget); full.Board.TriggerCount > 0 {
				return fmt.Errorf("difftest: %s cfg %d: no snapshot captured but a full run triggers %d times (%s)\nsource:\n%s",
					name, i, full.Board.TriggerCount, runReason(r), src)
			}
			continue
		}

		for round := 0; round < 2; round++ {
			for vi, inj := range replayInjectors() {
				full, err := newFull()
				if err != nil {
					return err
				}
				full.Glitch = inj
				fr := full.Run(replayBudget)
				fex := capture(full.Board, runReason(fr))

				rep.Glitch = inj
				rr := rep.RunFrom(snap, replayBudget)
				rex := capture(rep.Board, runReason(rr))

				if fr != rr {
					return fmt.Errorf("difftest: %s injector %d round %d: replay result %+v != full-run %+v\nsource:\n%s",
						name, vi, round, rr, fr, src)
				}
				if lines := Diff(fex, rex); len(lines) > 0 {
					return fmt.Errorf("difftest: %s injector %d round %d: replay diverged from full run:\n%s\nsource:\n%s",
						name, vi, round, joinLines(lines), src)
				}
			}
		}
	}
	return nil
}
