package difftest

import (
	"fmt"
	"os"
	"path/filepath"
)

// CorpusUnitName returns the file name of corpus unit i, the layout
// WriteCorpus emits and the corpus linter walks.
func CorpusUnitName(i int) string { return fmt.Sprintf("unit_%03d.c", i) }

// CorpusUnit renders corpus unit i for the given base seed: the seeded
// mini-C generator's output prefixed with a provenance comment, so a
// committed corpus documents how to regenerate itself. Deterministic in
// (seed, i).
func CorpusUnit(seed int64, i int) []byte {
	src := GenMiniC(seed + int64(i))
	header := fmt.Sprintf(
		"// difftest corpus unit %03d (GenMiniC seed %d); regenerate with\n"+
			"// glitchlint -corpus <dir> -gen <n> -gen-seed %d — do not edit.\n",
		i, seed+int64(i), seed)
	return append([]byte(header), src...)
}

// WriteCorpus emits n seeded mini-C firmware units into dir as
// unit_000.c … unit_NNN.c, creating dir if needed. Every unit is drawn
// from the same generator the defense-transparency fuzzing uses, so each
// compiles under the full defense matrix. The write is deterministic in
// (n, seed): regenerating over an existing corpus is a no-op diff.
func WriteCorpus(dir string, n int, seed int64) error {
	if n <= 0 {
		return fmt.Errorf("difftest: corpus size %d, want > 0", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, CorpusUnitName(i))
		if err := os.WriteFile(path, CorpusUnit(seed, i), 0o644); err != nil {
			return err
		}
	}
	return nil
}
