package difftest

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenMiniC emits a seeded, terminating mini-C program exercising everything
// the GlitchResistor passes rewrite: an enum (ENUM diversification), a
// sensitive global named "state" (integrity checks), helpers with constant
// returns (return-code hardening), bounded for/while loops (loop hardening)
// and data-dependent branches (branch doubling). The program folds all of
// its work into the global `out` and halts, so two builds can be compared
// by that single word plus the trigger count.
func GenMiniC(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder

	nEnum := 3 + rng.Intn(4)
	names := make([]string, nEnum)
	for i := range names {
		names[i] = fmt.Sprintf("M%d", i)
	}
	fmt.Fprintf(&sb, "enum mode { %s };\n", strings.Join(names, ", "))
	sb.WriteString("unsigned int out;\n")
	fmt.Fprintf(&sb, "unsigned int state = %d;\n", 1+rng.Intn(7))
	fmt.Fprintf(&sb, "unsigned int seed = %#x;\n", rng.Uint32())

	// Helper with constant enum returns: the return-code hardening target.
	m1, m2 := 2+rng.Intn(5), 2+rng.Intn(5)
	fmt.Fprintf(&sb, `
unsigned int classify(unsigned int v) {
	if (v %% %d == 0) { return %s; }
	if (v %% %d == 1) { return %s; }
	return %s;
}
`, m1, pickStr(rng, names), m2, pickStr(rng, names), pickStr(rng, names))

	sb.WriteString("void main(void) {\n")
	sb.WriteString("\tunsigned int acc = seed;\n")
	// Full instrumentation expands a statement to roughly 250 bytes of
	// Thumb, and codegen has no branch relaxation: the branch-doubling
	// trampoline at the end of main must stay within an unconditional
	// branch's +-2046-byte reach, which caps main at about six statements.
	nStmts := 3 + rng.Intn(4)
	for s := 0; s < nStmts; s++ {
		switch rng.Intn(6) {
		case 0: // bounded for loop over a mixing step
			fmt.Fprintf(&sb, "\tfor (unsigned int i%d = 0; i%d < %d; i%d = i%d + 1) {\n",
				s, s, 2+rng.Intn(7), s, s)
			fmt.Fprintf(&sb, "\t\tacc = acc * %d + i%d;\n", 3+rng.Intn(13), s)
			fmt.Fprintf(&sb, "\t\tstate = state ^ (acc >> %d);\n", rng.Intn(16))
			sb.WriteString("\t}\n")
		case 1: // branch on the classifier against an enum member
			fmt.Fprintf(&sb, "\tif (classify(acc) == %s) { acc = acc + %d; }\n",
				pickStr(rng, names), 1+rng.Intn(200))
			fmt.Fprintf(&sb, "\telse { acc = acc ^ %#x; }\n", rng.Uint32()&0xFFFF)
		case 2: // bounded while countdown
			fmt.Fprintf(&sb, "\t{ unsigned int n%d = %d;\n", s, 1+rng.Intn(9))
			fmt.Fprintf(&sb, "\twhile (n%d != 0) { acc = acc + n%d * %d; n%d = n%d - 1; } }\n",
				s, s, 1+rng.Intn(7), s, s)
		case 3: // mix the sensitive global, keeping it nonzero
			fmt.Fprintf(&sb, "\tstate = state + (acc & %#x);\n", rng.Uint32()&0xFF)
			sb.WriteString("\tif (state == 0) { state = 1; }\n")
		case 4: // division/remainder by small non-zero constants
			fmt.Fprintf(&sb, "\tacc = (acc %% %d) * %d + (acc & %#x) / %d;\n",
				2+rng.Intn(9), 3+rng.Intn(9), 0xFFFF, 1+rng.Intn(9))
		default: // raise the GPIO trigger: a countable observable
			sb.WriteString("\ttrigger();\n")
			fmt.Fprintf(&sb, "\tacc = acc | %#x;\n", uint32(1)<<rng.Intn(32))
		}
	}
	sb.WriteString("\tout = acc ^ state;\n")
	sb.WriteString("\thalt();\n}\n")
	return sb.String()
}

func pickStr(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }
