package difftest

import (
	"fmt"
	"math/bits"

	"glitchlab/internal/core"
	"glitchlab/internal/pipeline"
	"glitchlab/internal/rs"
)

// buildObs are the observables a defense pass must not change: what the
// program computed and how often it raised the external trigger. Cycles and
// bytes are explicitly allowed to grow.
type buildObs struct {
	Out      uint32
	Triggers int
}

// runBuild compiles src under cfg index i of core.DefenseConfigs("state"),
// runs it clean, and extracts the observables.
func runBuild(src string, i int) (buildObs, string, error) {
	cfg := core.DefenseConfigs("state")[i]
	name := cfg.Name()
	res, err := core.Compile(src, cfg)
	if err != nil {
		return buildObs{}, name, fmt.Errorf("difftest: %s build failed: %w", name, err)
	}
	m, err := core.NewMachine(res.Image)
	if err != nil {
		return buildObs{}, name, err
	}
	r := m.Run(200_000_000)
	if r.Reason != pipeline.StopHit || r.Tag != "halt" {
		return buildObs{}, name, fmt.Errorf("difftest: %s run ended %v/%q fault=%v",
			name, r.Reason, r.Tag, r.Fault)
	}
	addr, ok := res.Image.GlobalAddrs["out"]
	if !ok {
		return buildObs{}, name, fmt.Errorf("difftest: %s image has no `out` global", name)
	}
	out, ok := m.Board.Mem.ReadWord(addr)
	if !ok {
		return buildObs{}, name, fmt.Errorf("difftest: %s `out` unreadable at %#x", name, addr)
	}
	return buildObs{Out: out, Triggers: m.Board.TriggerCount}, name, nil
}

// CheckTransparency compiles the seeded mini-C program under every defense
// configuration of the paper's evaluation matrix and asserts the defended
// builds are observationally identical to the unprotected baseline:
// defenses may cost cycles and bytes, never change what is computed.
func CheckTransparency(seed int64) error {
	return CheckTransparencySource(GenMiniC(seed))
}

// CheckTransparencySource is CheckTransparency for explicit mini-C source
// (used to pin minimized regressions). The source must define a global
// `out` and reach halt().
func CheckTransparencySource(src string) error {
	n := len(core.DefenseConfigs("state"))
	base, baseName, err := runBuild(src, 0)
	if err != nil {
		return fmt.Errorf("%w\nsource:\n%s", err, src)
	}
	for i := 1; i < n; i++ {
		got, name, err := runBuild(src, i)
		if err != nil {
			return fmt.Errorf("%w\nsource:\n%s", err, src)
		}
		if got != base {
			return fmt.Errorf("difftest: defense %s is not transparent: out=%#x triggers=%d, %s baseline out=%#x triggers=%d\nsource:\n%s",
				name, got.Out, got.Triggers, baseName, base.Out, base.Triggers, src)
		}
	}
	return nil
}

// rsMinDistance is the paper's reported minimum pairwise Hamming distance
// for GlitchResistor's diversified constant sets (Section VI-A).
const rsMinDistance = 8

// CheckRS asserts the Reed-Solomon properties the defenses lean on, for an
// arbitrary (count, pick, mask) probe:
//
//   - the diversified code set has no duplicates and pairwise Hamming
//     distance >= 8, so corrupting a code by up to 7 bit flips can never
//     yield another valid code (the detection guarantee);
//   - the encoder is linear over GF(2), the algebraic identity the
//     distance bound rests on.
//
// count is clamped to the enum/return-set sizes the passes actually emit;
// pick selects the corrupted code and mask is normalized to 1-7 flips.
func CheckRS(count int, pick uint16, mask uint32) error {
	if count < 2 {
		count = 2
	}
	if count > 256 {
		count = 2 + count%255
	}
	codes, err := rs.Codes(count)
	if err != nil {
		return fmt.Errorf("difftest: rs.Codes(%d): %w", count, err)
	}
	set := make(map[uint32]bool, len(codes))
	for i, c := range codes {
		if set[c] {
			return fmt.Errorf("difftest: rs.Codes(%d): duplicate code %#x at index %d", count, c, i)
		}
		set[c] = true
	}
	if d := rs.MinPairwiseDistance(codes); d < rsMinDistance {
		return fmt.Errorf("difftest: rs.Codes(%d): min pairwise distance %d < %d", count, d, rsMinDistance)
	}

	flips := normalizeMask(mask)
	victim := codes[int(pick)%len(codes)]
	if set[victim^flips] {
		return fmt.Errorf("difftest: rs.Codes(%d): %d-bit corruption %#x of %#x is another valid code",
			count, bits.OnesCount32(flips), flips, victim)
	}

	// GF(2) linearity: Encode(a xor b) == Encode(a) xor Encode(b).
	enc, err := rs.NewEncoder(4)
	if err != nil {
		return err
	}
	a := []byte{byte(pick), byte(pick >> 8)}
	b := []byte{byte(mask), byte(mask >> 8)}
	ab := []byte{a[0] ^ b[0], a[1] ^ b[1]}
	ea, eb, eab := enc.Encode(a), enc.Encode(b), enc.Encode(ab)
	for i := range eab {
		if eab[i] != ea[i]^eb[i] {
			return fmt.Errorf("difftest: rs encoder not GF(2)-linear at parity byte %d: E(%x^%x)=%x, E(a)^E(b)=%x",
				i, a, b, eab, []byte{ea[0] ^ eb[0], ea[1] ^ eb[1], ea[2] ^ eb[2], ea[3] ^ eb[3]})
		}
	}
	return nil
}

// normalizeMask reduces an arbitrary 32-bit mask to a nonzero mask of at
// most rsMinDistance-1 set bits — the corruption weight the code set
// guarantees detection for.
func normalizeMask(mask uint32) uint32 {
	var out uint32
	n := 0
	for b := uint(0); b < 32 && n < rsMinDistance-1; b++ {
		if mask&(1<<b) != 0 {
			out |= 1 << b
			n++
		}
	}
	if out == 0 {
		out = 1
	}
	return out
}
