package difftest

import "testing"

// The Fuzz* harnesses expose the four oracles (plus the Reed-Solomon
// property probe) to `go test -fuzz`. Seed corpora live under
// testdata/fuzz/<FuzzName>/ so plain `go test` replays them, and ci.sh runs
// a short -fuzztime smoke of each. A crasher minimizes to a single seed (or
// halfword pair), which reproduces deterministically through the same
// Check* entry point.

// FuzzEmuVsPipeline hunts for glitch-free divergence between the
// functional emulator and the pipeline model on generated programs.
func FuzzEmuVsPipeline(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckEmuVsPipeline(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzISARoundTrip hunts for programs whose assemble → decode →
// disassemble → re-assemble round trip is not a byte-identical fixed point.
func FuzzISARoundTrip(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckRoundTrip(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDecode probes isa.Decode with raw halfwords: it must never panic,
// classify every undefined encoding as OpInvalid, and re-encode every
// defined one to the same bits.
func FuzzDecode(f *testing.F) {
	for _, v := range [][2]uint16{
		{0x0000, 0x0000}, // movs r0, r0
		{0x4140, 0xBF00}, // adcs
		{0x4500, 0x0000}, // invalid: cmp both-low in hi-reg space
		{0xB662, 0x0000}, // cps
		{0xBF50, 0x0000}, // unallocated hint
		{0xDE00, 0x0000}, // udf
		{0xF000, 0xF800}, // bl
		{0xE800, 0x0000}, // undefined 32-bit space
	} {
		f.Add(v[0], v[1])
	}
	f.Fuzz(func(t *testing.T, hw, hw2 uint16) {
		if err := CheckDecode(hw, hw2); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDefenseTransparency hunts for GlitchResistor passes that change what
// a program computes rather than only how long it takes.
func FuzzDefenseTransparency(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckTransparency(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzRSCodes probes the Reed-Solomon constant sets: distinctness, the
// paper's minimum pairwise Hamming distance of 8, detectability of <=7-bit
// corruption, and GF(2) linearity of the encoder.
func FuzzRSCodes(f *testing.F) {
	f.Add(uint16(4), uint16(0), uint32(1))
	f.Add(uint16(16), uint16(7), uint32(0x80000001))
	f.Add(uint16(64), uint16(63), uint32(0xFFFFFFFF))
	f.Add(uint16(256), uint16(100), uint32(0x01010101))
	f.Fuzz(func(t *testing.T, count, pick uint16, mask uint32) {
		if err := CheckRS(int(count), pick, mask); err != nil {
			t.Fatal(err)
		}
	})
}
