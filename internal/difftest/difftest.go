// Package difftest turns glitchlab's two independent executors into oracles
// for each other. The repo has a functional ARMv6-M interpreter
// (internal/emu) and a three-stage pipeline model layered on top of it
// (internal/pipeline); under glitch-free execution the two must agree on
// every observable — final registers, NZCV flags, memory contents, cycle and
// step counts, and fault classification. Glitched divergence between them is
// the point of the repo; glitch-free divergence is a bug, and this package
// exists to find it automatically.
//
// Four oracles are exposed, each with a native Go fuzz harness (see
// fuzz_test.go) and a deterministic seed-replay test:
//
//   - CheckEmuVsPipeline: a seeded generator of valid Thumb-16 programs
//     (weighted over every encoding group in internal/isa) is run glitch-free
//     on both executors and every observable is diffed.
//   - CheckRoundTrip: assemble → decode → disassemble → re-assemble over
//     internal/isa must reach a byte-identical fixed point.
//   - CheckDecode: byte-level probing of isa.Decode — it must never panic,
//     must classify every invalid encoding as OpInvalid, and every valid
//     16-bit decode must re-encode to semantically identical form.
//   - CheckTransparency: generated mini-C programs compiled with and without
//     GlitchResistor passes must produce identical observable outputs
//     (defenses may cost cycles and bytes, never change what is computed).
//
// All randomness flows through explicit *rand.Rand values seeded from the
// harness inputs, so every failure reproduces byte-for-byte from its seed.
package difftest

import (
	"os"
	"strconv"
	"sync/atomic"
)

// baseSeed offsets every corpus-replay seed, so a failing fuzz input can be
// replayed under `go test` by pinning the exact seed it used.
var baseSeed atomic.Int64

func init() {
	if v := os.Getenv("GLITCHLAB_DIFFTEST_SEED"); v != "" {
		if s, err := strconv.ParseInt(v, 0, 64); err == nil {
			baseSeed.Store(s)
		}
	}
}

// Seed sets the base seed the corpus-replay tests offset their per-case
// seeds by. The default is 0; the GLITCHLAB_DIFFTEST_SEED environment
// variable overrides it at process start. Setting a failing run's seed here
// (or in the environment) reproduces that run byte-for-byte.
func Seed(s int64) { baseSeed.Store(s) }

// BaseSeed returns the current base seed.
func BaseSeed() int64 { return baseSeed.Load() }
