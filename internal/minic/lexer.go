package minic

import (
	"strconv"
	"strings"
)

// Lex tokenizes source text. Comments (// and /* */) are skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			start := [2]int{line, col}
			advance(2)
			for {
				if i+1 >= len(src) {
					return nil, errf(start[0], start[1], "unterminated comment")
				}
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					break
				}
				advance(1)
			}
		case isIdentStart(c):
			startLine, startCol := line, col
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			text := src[i:j]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
			advance(j - i)
		case c >= '0' && c <= '9':
			startLine, startCol := line, col
			j := i
			for j < len(src) && (isIdentPart(src[j])) {
				j++
			}
			text := src[i:j]
			v, err := strconv.ParseUint(strings.ToLower(text), 0, 32)
			if err != nil {
				return nil, errf(startLine, startCol, "bad number %q", text)
			}
			toks = append(toks, Token{
				Kind: TokNumber, Text: text, Val: uint32(v),
				Line: startLine, Col: startCol,
			})
			advance(j - i)
		default:
			matched := false
			for _, p := range punctuation {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{
						Kind: TokPunct, Text: p, Line: line, Col: col,
					})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, col, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
