package minic

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`
		// line comment
		enum status { OK = 0x10, FAIL };
		/* block
		   comment */
		unsigned int x = 42;
	`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.String())
	}
	joined := strings.Join(kinds, " ")
	want := "enum status { OK = 16 , FAIL } ; unsigned int x = 42 ; <eof>"
	if joined != want {
		t.Fatalf("tokens = %q, want %q", joined, want)
	}
}

func TestLexNumbers(t *testing.T) {
	tests := map[string]uint32{
		"0":          0,
		"42":         42,
		"0x10":       16,
		"0xdeadbeef": 0xdeadbeef,
		"0777":       511, // octal, like C
	}
	for src, want := range tests {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", src, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Val != want {
			t.Errorf("Lex(%q) = %v (val %d), want %d", src, toks[0], toks[0].Val, want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"$", "0xzz", "/* unterminated"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

const goodProgram = `
enum status { PENDING, READY, DONE };
enum fixed { A = 1, B = 2 };
volatile unsigned int ticks;
unsigned int threshold = 3;

unsigned int helper(unsigned int a, unsigned int b) {
	return a + b * 2;
}

unsigned int check(unsigned int x) {
	unsigned int acc = 0;
	for (unsigned int i = 0; i < x; i = i + 1) {
		acc = acc + helper(i, x);
		if (acc > 100) {
			break;
		}
	}
	while (acc >= threshold && acc != 0) {
		acc = acc - threshold;
	}
	if (acc == 0 || acc == 1) {
		return READY;
	}
	return PENDING;
}

void main(void) {
	ticks = 7;
	if (check(ticks) == READY) {
		success();
	}
	halt();
}
`

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return chk
}

func TestParseAndCheckGoodProgram(t *testing.T) {
	chk := mustCheck(t, goodProgram)
	if len(chk.Prog.Enums) != 2 || len(chk.Prog.Funcs) != 3 {
		t.Fatalf("enums=%d funcs=%d", len(chk.Prog.Enums), len(chk.Prog.Funcs))
	}
	// Default enum values follow the C standard.
	for name, want := range map[string]uint32{
		"PENDING": 0, "READY": 1, "DONE": 2, "A": 1, "B": 2,
	} {
		m, ok := chk.EnumMembers[name]
		if !ok || m.Value != want {
			t.Errorf("enum %s = %v, want %d", name, m, want)
		}
	}
	if !chk.Prog.Enums[0].AllUninitialized() {
		t.Error("status should be all-uninitialized")
	}
	if chk.Prog.Enums[1].AllUninitialized() {
		t.Error("fixed has explicit values")
	}
	if chk.GlobalInit["threshold"] != 3 {
		t.Errorf("threshold init = %d", chk.GlobalInit["threshold"])
	}
	if !chk.Globals["ticks"].Volatile {
		t.Error("ticks should be volatile")
	}
}

func TestConstFolding(t *testing.T) {
	chk := mustCheck(t, `
		enum e { X = 4 };
		unsigned int a = 1 + 2 * 3;
		unsigned int b = X << 2;
		unsigned int c = ~0;
		unsigned int d = (10 > 3) + (2 == 2);
	`)
	for name, want := range map[string]uint32{
		"a": 7, "b": 16, "c": 0xFFFFFFFF, "d": 2,
	} {
		if got := chk.GlobalInit[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"undeclared var":     `void main(void) { x = 1; }`,
		"undeclared in expr": `void main(void) { unsigned int y = x + 1; }`,
		"undefined call":     `void main(void) { frob(); }`,
		"arity":              `unsigned int f(unsigned int a) { return a; } void main(void) { f(); }`,
		"void as value":      `void f(void) { } void main(void) { unsigned int x = f(); }`,
		"missing return":     `unsigned int f(void) { return; } void main(void) { }`,
		"void returns value": `void f(void) { return 1; } void main(void) { }`,
		"break outside loop": `void main(void) { break; }`,
		"dup global":         `unsigned int a; unsigned int a; void main(void) { }`,
		"dup function":       `void f(void) { } void f(void) { } void main(void) { }`,
		"dup enum member":    `enum a { X }; enum b { X }; void main(void) { }`,
		"assign to enum":     `enum a { X }; void main(void) { X = 1; }`,
		"shadow builtin":     `void success(void) { } void main(void) { }`,
		"dup local":          `void main(void) { unsigned int a; unsigned int a; }`,
		"nonconst global":    `unsigned int a; unsigned int b = a; void main(void) { }`,
	}
	for name, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			continue // parse error also acceptable
		}
		if _, err := Check(prog); err == nil {
			t.Errorf("%s: Check succeeded for %q", name, src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`void main(void) {`,
		`void main(void) { if x { } }`,
		`void main(void) { return 1 }`,
		`enum e { };`,
		`unsigned int = 3;`,
		`void main(void) { 1 + ; }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestScoping(t *testing.T) {
	// Inner declarations shadow outer; siblings do not leak.
	src := `
	void main(void) {
		unsigned int a = 1;
		if (a == 1) {
			unsigned int b = 2;
			a = b;
		}
		a = b;
	}
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err == nil {
		t.Fatal("use of out-of-scope local succeeded")
	}
}

func TestElseIfChain(t *testing.T) {
	mustCheck(t, `
	void main(void) {
		unsigned int a = 1;
		if (a == 0) { halt(); }
		else if (a == 1) { success(); }
		else { halt(); }
	}
	`)
}
