package minic

// Parse turns source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) is(text string) bool {
	t := p.cur()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t := p.cur()
	return errf(t.Line, t.Col, "expected %q, found %q", text, t.String())
}

func (p *parser) ident() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Line, t.Col, "expected identifier, found %q", t.String())
	}
	p.pos++
	return t, nil
}

// typeStart reports whether the current token begins a type specifier.
func (p *parser) typeStart() bool {
	switch p.cur().Text {
	case "unsigned", "int", "void", "volatile", "const", "enum":
		return p.cur().Kind == TokKeyword
	}
	return false
}

// typeSpec parses a type specifier, returning whether it is void and
// whether volatile was present.
func (p *parser) typeSpec() (isVoid, volatile bool, err error) {
	sawType := false
	for {
		switch {
		case p.accept("volatile"):
			volatile = true
		case p.accept("const"):
			// Accepted and ignored: constants are folded anyway.
		case p.accept("unsigned"):
			p.accept("int")
			sawType = true
		case p.accept("int"):
			sawType = true
		case p.accept("void"):
			isVoid = true
			sawType = true
		case p.is("enum"):
			p.pos++
			if _, err := p.ident(); err != nil {
				return false, false, err
			}
			sawType = true
		default:
			if !sawType {
				t := p.cur()
				return false, false, errf(t.Line, t.Col,
					"expected type, found %q", t.String())
			}
			return isVoid, volatile, nil
		}
	}
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		if p.is("enum") && p.toks[p.pos+2].Text == "{" {
			e, err := p.enumDecl()
			if err != nil {
				return nil, err
			}
			prog.Enums = append(prog.Enums, e)
			continue
		}
		isVoid, volatile, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.is("(") {
			fn, err := p.funcDecl(name, isVoid)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		g := &GlobalDecl{Name: name.Text, Volatile: volatile, Line: name.Line}
		if p.accept("=") {
			g.HasInit = true
			g.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *parser) enumDecl() (*EnumDecl, error) {
	p.pos++ // enum
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	e := &EnumDecl{Name: name.Text, Line: name.Line}
	for !p.is("}") {
		m, err := p.ident()
		if err != nil {
			return nil, err
		}
		member := &EnumMember{Name: m.Text}
		if p.accept("=") {
			t := p.cur()
			if t.Kind != TokNumber {
				return nil, errf(t.Line, t.Col, "enum value must be a number literal")
			}
			p.pos++
			member.HasValue = true
			member.Value = t.Val
		}
		e.Members = append(e.Members, member)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(e.Members) == 0 {
		return nil, errf(e.Line, 1, "enum %s has no members", e.Name)
	}
	return e, nil
}

func (p *parser) funcDecl(name Token, isVoid bool) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, ReturnsVal: !isVoid, Line: name.Line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		if p.accept("void") && p.is(")") {
			// (void) parameter list.
		} else {
			for {
				if p.typeStart() {
					if _, _, err := p.typeSpec(); err != nil {
						return nil, err
					}
				}
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, a.Text)
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.is("}") {
		if p.cur().Kind == TokEOF {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.is("{"):
		return p.block()
	case p.typeStart():
		return p.declStmt()
	case p.is("if"):
		return p.ifStmt()
	case p.is("while"):
		return p.whileStmt()
	case p.is("for"):
		return p.forStmt()
	case p.is("return"):
		t := p.next()
		r := &ReturnStmt{Line: t.Line}
		if !p.is(";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		return r, p.expect(";")
	case p.is("break"):
		t := p.next()
		return &BreakStmt{Line: t.Line}, p.expect(";")
	case p.is("continue"):
		t := p.next()
		return &ContinueStmt{Line: t.Line}, p.expect(";")
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

func (p *parser) declStmt() (Stmt, error) {
	_, volatile, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.Text, Volatile: volatile, Line: name.Line}
	if p.accept("=") {
		d.HasInit = true
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return d, p.expect(";")
}

// simpleStmt is an assignment or expression statement without the
// trailing semicolon (shared with for-clauses).
func (p *parser) simpleStmt() (Stmt, error) {
	if p.cur().Kind == TokIdent && p.toks[p.pos+1].Text == "=" &&
		p.toks[p.pos+1].Kind == TokPunct {
		name := p.next()
		p.pos++ // "="
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Text, X: x, Line: name.Line}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.pos++ // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	if p.accept("else") {
		if p.is("if") {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = &BlockStmt{Stmts: []Stmt{elif}}
		} else {
			s.Else, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	p.pos++ // while
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.pos++ // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	s := &ForStmt{}
	var err error
	if !p.is(";") {
		if p.typeStart() {
			s.Init, err = p.declStmt()
			if err != nil {
				return nil, err
			}
		} else {
			s.Init, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.pos++
	}
	if !p.is(";") {
		s.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(")") {
		s.Post, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	s.Body, err = p.block()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Binary operator precedence, higher binds tighter.
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) {
	return p.binExpr(1)
}

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.Text]
		if t.Kind != TokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "!" || t.Text == "~" || t.Text == "-") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		return &NumExpr{Val: t.Val}, nil
	case t.Kind == TokIdent:
		p.pos++
		if p.is("(") {
			p.pos++
			call := &CallExpr{Name: t.Text, Line: t.Line}
			if !p.accept(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &VarExpr{Name: t.Text, Line: t.Line}, nil
	case t.Text == "(":
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	default:
		return nil, errf(t.Line, t.Col, "unexpected token %q", t.String())
	}
}
