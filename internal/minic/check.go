package minic

// Builtins are the runtime entry points the code generator provides; they
// can be called without declaration. All take no arguments; read_a is a
// placeholder none of the firmware uses but tests may declare themselves.
var Builtins = map[string]struct {
	Arity      int
	ReturnsVal bool
}{
	"success":         {0, false}, // reach the success stop symbol
	"glitch_detected": {0, false}, // the defense's detection reaction
	"trigger":         {0, false}, // raise the glitcher's GPIO trigger
	"boot_done":       {0, false}, // mark the end of the boot sequence
	"halt":            {0, false}, // park the CPU at the halt symbol
}

// Checked is a semantically analyzed program, ready for lowering.
type Checked struct {
	Prog *Program
	// EnumMembers maps member name to its (possibly rewritten) member.
	EnumMembers map[string]*EnumMember
	// Globals maps global name to its declaration.
	Globals map[string]*GlobalDecl
	// GlobalInit holds each initialized global's folded constant value.
	GlobalInit map[string]uint32
	// Funcs maps function name to its declaration.
	Funcs map[string]*FuncDecl
}

// Check performs semantic analysis. On success the returned Checked carries
// the symbol tables lowering needs; enum members without explicit values
// have been assigned C-default sequential values (which the ENUM rewriter
// pass may later replace).
func Check(prog *Program) (*Checked, error) {
	c := &Checked{
		Prog:        prog,
		EnumMembers: map[string]*EnumMember{},
		Globals:     map[string]*GlobalDecl{},
		GlobalInit:  map[string]uint32{},
		Funcs:       map[string]*FuncDecl{},
	}
	for _, e := range prog.Enums {
		next := uint32(0)
		for _, m := range e.Members {
			if _, dup := c.EnumMembers[m.Name]; dup {
				return nil, errf(e.Line, 1, "duplicate enum member %q", m.Name)
			}
			if m.HasValue {
				next = m.Value
			} else {
				m.Value = next
			}
			next++
			c.EnumMembers[m.Name] = m
		}
	}
	for _, g := range prog.Globals {
		if _, dup := c.Globals[g.Name]; dup {
			return nil, errf(g.Line, 1, "duplicate global %q", g.Name)
		}
		if _, isEnum := c.EnumMembers[g.Name]; isEnum {
			return nil, errf(g.Line, 1, "global %q shadows an enum member", g.Name)
		}
		c.Globals[g.Name] = g
		if g.HasInit {
			v, ok := c.foldConst(g.Init)
			if !ok {
				return nil, errf(g.Line, 1, "global %q initializer is not constant", g.Name)
			}
			c.GlobalInit[g.Name] = v
		}
	}
	for _, fn := range prog.Funcs {
		if _, dup := c.Funcs[fn.Name]; dup {
			return nil, errf(fn.Line, 1, "duplicate function %q", fn.Name)
		}
		if _, isBuiltin := Builtins[fn.Name]; isBuiltin {
			return nil, errf(fn.Line, 1, "function %q shadows a builtin", fn.Name)
		}
		c.Funcs[fn.Name] = fn
	}
	for _, fn := range prog.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// foldConst evaluates a constant expression (numbers, enum constants and
// arithmetic over them).
func (c *Checked) foldConst(x Expr) (uint32, bool) {
	switch e := x.(type) {
	case *NumExpr:
		return e.Val, true
	case *VarExpr:
		if m, ok := c.EnumMembers[e.Name]; ok {
			return m.Value, true
		}
		return 0, false
	case *UnaryExpr:
		v, ok := c.foldConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *BinExpr:
		l, ok1 := c.foldConst(e.L)
		r, ok2 := c.foldConst(e.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		return foldBin(e.Op, l, r)
	}
	return 0, false
}

func foldBin(op string, l, r uint32) (uint32, bool) {
	b2u := func(b bool) uint32 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case "%":
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case "&":
		return l & r, true
	case "|":
		return l | r, true
	case "^":
		return l ^ r, true
	case "<<":
		return l << (r & 31), true
	case ">>":
		return l >> (r & 31), true
	case "==":
		return b2u(l == r), true
	case "!=":
		return b2u(l != r), true
	case "<":
		return b2u(l < r), true
	case ">":
		return b2u(l > r), true
	case "<=":
		return b2u(l <= r), true
	case ">=":
		return b2u(l >= r), true
	case "&&":
		return b2u(l != 0 && r != 0), true
	case "||":
		return b2u(l != 0 || r != 0), true
	}
	return 0, false
}

// funcScope tracks local declarations during checking.
type funcScope struct {
	c      *Checked
	fn     *FuncDecl
	scopes []map[string]bool
	loops  int
}

func (s *funcScope) push() { s.scopes = append(s.scopes, map[string]bool{}) }
func (s *funcScope) pop()  { s.scopes = s.scopes[:len(s.scopes)-1] }

func (s *funcScope) declare(name string, line int) error {
	top := s.scopes[len(s.scopes)-1]
	if top[name] {
		return errf(line, 1, "duplicate declaration of %q", name)
	}
	top[name] = true
	return nil
}

func (s *funcScope) resolvable(name string) bool {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if s.scopes[i][name] {
			return true
		}
	}
	if _, ok := s.c.Globals[name]; ok {
		return true
	}
	_, ok := s.c.EnumMembers[name]
	return ok
}

func (c *Checked) checkFunc(fn *FuncDecl) error {
	s := &funcScope{c: c, fn: fn}
	s.push()
	for _, p := range fn.Params {
		if err := s.declare(p, fn.Line); err != nil {
			return err
		}
	}
	return s.checkBlock(fn.Body)
}

func (s *funcScope) checkBlock(b *BlockStmt) error {
	s.push()
	defer s.pop()
	for _, st := range b.Stmts {
		if err := s.checkStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *funcScope) checkStmt(st Stmt) error {
	switch t := st.(type) {
	case *BlockStmt:
		return s.checkBlock(t)
	case *DeclStmt:
		if t.HasInit {
			if err := s.checkExpr(t.Init, true); err != nil {
				return err
			}
		}
		return s.declare(t.Name, t.Line)
	case *ExprStmt:
		return s.checkExpr(t.X, false)
	case *AssignStmt:
		if !s.resolvable(t.Name) {
			return errf(t.Line, 1, "assignment to undeclared %q", t.Name)
		}
		if _, isEnum := s.c.EnumMembers[t.Name]; isEnum {
			return errf(t.Line, 1, "cannot assign to enum constant %q", t.Name)
		}
		return s.checkExpr(t.X, true)
	case *IfStmt:
		if err := s.checkExpr(t.Cond, true); err != nil {
			return err
		}
		if err := s.checkBlock(t.Then); err != nil {
			return err
		}
		if t.Else != nil {
			return s.checkBlock(t.Else)
		}
		return nil
	case *WhileStmt:
		if err := s.checkExpr(t.Cond, true); err != nil {
			return err
		}
		s.loops++
		defer func() { s.loops-- }()
		return s.checkBlock(t.Body)
	case *ForStmt:
		s.push()
		defer s.pop()
		if t.Init != nil {
			if err := s.checkStmt(t.Init); err != nil {
				return err
			}
		}
		if t.Cond != nil {
			if err := s.checkExpr(t.Cond, true); err != nil {
				return err
			}
		}
		if t.Post != nil {
			if err := s.checkStmt(t.Post); err != nil {
				return err
			}
		}
		s.loops++
		defer func() { s.loops-- }()
		return s.checkBlock(t.Body)
	case *ReturnStmt:
		if s.fn.ReturnsVal && t.X == nil {
			return errf(t.Line, 1, "%s must return a value", s.fn.Name)
		}
		if !s.fn.ReturnsVal && t.X != nil {
			return errf(t.Line, 1, "void %s cannot return a value", s.fn.Name)
		}
		if t.X != nil {
			return s.checkExpr(t.X, true)
		}
		return nil
	case *BreakStmt:
		if s.loops == 0 {
			return errf(t.Line, 1, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if s.loops == 0 {
			return errf(t.Line, 1, "continue outside loop")
		}
		return nil
	}
	return nil
}

func (s *funcScope) checkExpr(x Expr, needValue bool) error {
	switch e := x.(type) {
	case *NumExpr:
		return nil
	case *VarExpr:
		if !s.resolvable(e.Name) {
			return errf(e.Line, 1, "undeclared identifier %q", e.Name)
		}
		return nil
	case *CallExpr:
		arity := -1
		returnsVal := false
		if b, ok := Builtins[e.Name]; ok {
			arity, returnsVal = b.Arity, b.ReturnsVal
		} else if fn, ok := s.c.Funcs[e.Name]; ok {
			arity, returnsVal = len(fn.Params), fn.ReturnsVal
		} else {
			return errf(e.Line, 1, "call to undefined function %q", e.Name)
		}
		if len(e.Args) != arity {
			return errf(e.Line, 1, "%s expects %d arguments, got %d",
				e.Name, arity, len(e.Args))
		}
		if needValue && !returnsVal {
			return errf(e.Line, 1, "void call %q used as a value", e.Name)
		}
		if len(e.Args) > 4 {
			return errf(e.Line, 1, "more than 4 arguments not supported")
		}
		for _, a := range e.Args {
			if err := s.checkExpr(a, true); err != nil {
				return err
			}
		}
		return nil
	case *UnaryExpr:
		return s.checkExpr(e.X, true)
	case *BinExpr:
		if err := s.checkExpr(e.L, true); err != nil {
			return err
		}
		return s.checkExpr(e.R, true)
	}
	return nil
}
