// Package minic implements the C-subset frontend GlitchResistor compiles:
// lexer, parser, AST and semantic analysis for the embedded-firmware
// dialect the paper's evaluation firmware is written in (unsigned 32-bit
// scalars, enums, volatile globals, functions, if/while/for control flow).
//
// The paper's tool is built on Clang/LLVM; this package is the from-scratch
// equivalent front end so that the defense passes (internal/passes) can
// transform real programs and the code generator (internal/codegen) can
// emit real Thumb-16 firmware for the glitching experiments.
package minic

import "fmt"

// TokKind classifies a token.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  uint32 // for TokNumber
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokNumber:
		return fmt.Sprintf("%d", t.Val)
	default:
		return t.Text
	}
}

// Error is a front-end diagnostic with source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("minic: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

var keywords = map[string]bool{
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"break": true, "continue": true, "enum": true, "volatile": true,
	"unsigned": true, "int": true, "void": true, "const": true,
}

var punctuation = []string{
	// Longest first so maximal munch works.
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"{", "}", "(", ")", ";", ",", "=", "<", ">", "+", "-", "*", "/", "%",
	"&", "|", "^", "!", "~",
}
