package minic

// Program is a parsed translation unit.
type Program struct {
	Enums   []*EnumDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// EnumDecl is an enum type declaration.
type EnumDecl struct {
	Name    string
	Members []*EnumMember
	Line    int
}

// AllUninitialized reports whether no member has an explicit value — the
// precondition for GlitchResistor's ENUM rewriter (paper Section VI-A).
func (e *EnumDecl) AllUninitialized() bool {
	for _, m := range e.Members {
		if m.HasValue {
			return false
		}
	}
	return true
}

// EnumMember is one enumerator.
type EnumMember struct {
	Name     string
	HasValue bool
	Value    uint32 // explicit value, or assigned during checking
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Name     string
	Volatile bool
	HasInit  bool
	Init     Expr // constant expression
	Line     int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name       string
	Params     []string
	ReturnsVal bool // false for void
	Body       *BlockStmt
	Line       int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	Name     string
	Volatile bool
	HasInit  bool
	Init     Expr
	Line     int
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ X Expr }

// AssignStmt stores to a variable.
type AssignStmt struct {
	Name string
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a for loop; any clause may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	X    Expr // nil for void return
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is an expression node.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct{ Val uint32 }

// VarExpr references a variable or enum constant.
type VarExpr struct {
	Name string
	Line int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// UnaryExpr applies !, ~ or unary -.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*NumExpr) expr()   {}
func (*VarExpr) expr()   {}
func (*CallExpr) expr()  {}
func (*UnaryExpr) expr() {}
func (*BinExpr) expr()   {}
