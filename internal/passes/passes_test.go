package passes

import (
	"testing"

	"glitchlab/internal/ir"
	"glitchlab/internal/minic"
	"glitchlab/internal/rs"
)

func lowerSrc(t *testing.T, src string, rewriteEnums bool) (*ir.Module, *Report) {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	rep := &Report{}
	if rewriteEnums {
		if err := RewriteEnums(chk, rep); err != nil {
			t.Fatalf("enum rewrite: %v", err)
		}
	}
	m, err := ir.Lower(chk)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m, rep
}

const guardSrc = `
volatile unsigned int a;
void main(void) {
	while (!a) { }
	success();
}
`

const ifSrc = `
unsigned int g = 5;
void main(void) {
	unsigned int x = g;
	if (x == 5) {
		success();
	}
	halt();
}
`

func TestEnumRewrite(t *testing.T) {
	prog, err := minic.Parse(`
		enum status { PENDING, READY, DONE, ERROR };
		enum wire { ACK = 6, NAK = 21 };
		void main(void) { halt(); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{}
	if err := RewriteEnums(chk, rep); err != nil {
		t.Fatal(err)
	}
	if rep.EnumsRewritten != 1 || rep.EnumValues != 4 {
		t.Fatalf("report = %+v", rep)
	}
	// Rewritten values must have the paper's minimum pairwise Hamming
	// distance of 8 and match the Reed-Solomon codes.
	var vals []uint32
	for _, m := range chk.Prog.Enums[0].Members {
		vals = append(vals, m.Value)
	}
	if d := rs.MinPairwiseDistance(vals); d < 8 {
		t.Errorf("rewritten enum min distance = %d, want >= 8", d)
	}
	want, _ := rs.Codes(4)
	for i, v := range vals {
		if v != want[i] {
			t.Errorf("member %d = %#x, want %#x", i, v, want[i])
		}
	}
	// Partially initialized enums stay untouched (protocol constants).
	if chk.EnumMembers["ACK"].Value != 6 || chk.EnumMembers["NAK"].Value != 21 {
		t.Error("initialized enum was rewritten")
	}
}

func TestBranchHardeningStructure(t *testing.T) {
	m, rep := lowerSrc(t, ifSrc, false)
	if err := Instrument(m, Config{Branches: true}, rep); err != nil {
		t.Fatal(err)
	}
	if rep.BranchesHardened != 1 {
		t.Fatalf("branches hardened = %d, want 1", rep.BranchesHardened)
	}
	f, _ := m.Func("main")
	// The hardened branch's true edge must point at a GR check block
	// which ends in a GR conditional branch to the detect block.
	var checkBlk *ir.Block
	for _, b := range f.Blocks {
		term := b.Term()
		if term != nil && term.Op == ir.OpCondBr && !term.GR {
			cb, ok := f.Block(term.TrueBlk)
			if !ok {
				t.Fatalf("true edge %q missing", term.TrueBlk)
			}
			checkBlk = cb
		}
	}
	if checkBlk == nil {
		t.Fatal("no hardened branch found")
	}
	term := checkBlk.Term()
	if term == nil || term.Op != ir.OpCondBr || !term.GR {
		t.Fatalf("check block terminator = %v", term)
	}
	if term.FalseBlk != DetectBlock {
		t.Errorf("check fail edge = %q, want detect", term.FalseBlk)
	}
	// The re-check must work on complemented operands: expect xor with
	// 0xFFFFFFFF instructions in the check block.
	xors := 0
	for _, in := range checkBlk.Instrs {
		if in.Op == ir.OpBin && in.BinOp == ir.BinXor && in.GR {
			xors++
		}
	}
	if xors < 2 {
		t.Errorf("check block has %d complement xors, want >= 2", xors)
	}
	if _, ok := f.Block(DetectBlock); !ok {
		t.Error("detect block missing")
	}
}

func TestLoopHardeningStructure(t *testing.T) {
	m, rep := lowerSrc(t, guardSrc, false)
	if err := Instrument(m, Config{Loops: true}, rep); err != nil {
		t.Fatal(err)
	}
	if rep.LoopsHardened != 1 {
		t.Fatalf("loops hardened = %d, want 1", rep.LoopsHardened)
	}
	f, _ := m.Func("main")
	for _, b := range f.Blocks {
		if !b.IsLoopHeader {
			continue
		}
		term := b.Term()
		cb, ok := f.Block(term.FalseBlk)
		if !ok || cb.Term() == nil || !cb.Term().GR {
			t.Fatalf("loop exit edge not hardened: %v", term)
		}
	}
}

func TestVolatileNotReplicated(t *testing.T) {
	// The guard loads a volatile global; the redundant check must reuse
	// the loaded value rather than issuing a second volatile load.
	m, rep := lowerSrc(t, guardSrc, false)
	if err := Instrument(m, Config{Branches: true, Loops: true}, rep); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Func("main")
	volLoads := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoadG && in.GName == "a" {
				volLoads++
				if in.GR {
					t.Error("volatile load was replicated by a defense pass")
				}
			}
		}
	}
	if volLoads != 1 {
		t.Errorf("volatile loads = %d, want 1", volLoads)
	}
}

func TestIntegrityStructure(t *testing.T) {
	src := `
	unsigned int secret = 7;
	void main(void) {
		secret = 9;
		if (secret == 9) { success(); }
		halt();
	}
	`
	m, rep := lowerSrc(t, src, false)
	if err := Instrument(m, Config{Integrity: true, Sensitive: []string{"secret"}}, rep); err != nil {
		t.Fatal(err)
	}
	if rep.ShadowedGlobals != 1 {
		t.Fatalf("shadows = %d", rep.ShadowedGlobals)
	}
	shadow, ok := m.Global("__gr_shadow_secret")
	if !ok || !shadow.IsShadow {
		t.Fatal("shadow global missing")
	}
	g, _ := m.Global("secret")
	if g.Shadow != shadow.Name || !g.Sensitive {
		t.Error("primary global not linked to shadow")
	}
	f, _ := m.Func("main")
	var shadowStores, shadowLoads int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.GName != shadow.Name {
				continue
			}
			switch in.Op {
			case ir.OpStoreG:
				shadowStores++
			case ir.OpLoadG:
				shadowLoads++
			}
			if !in.Volatile || !in.GR {
				t.Errorf("shadow access not volatile GR: %v", in)
			}
		}
	}
	if shadowStores != 1 || shadowLoads != 1 {
		t.Errorf("shadow stores=%d loads=%d, want 1/1", shadowStores, shadowLoads)
	}
}

func TestIntegrityUnknownGlobal(t *testing.T) {
	m, rep := lowerSrc(t, ifSrc, false)
	err := Instrument(m, Config{Integrity: true, Sensitive: []string{"nosuch"}}, rep)
	if err == nil {
		t.Fatal("unknown sensitive global accepted")
	}
}

func TestReturnsHardening(t *testing.T) {
	src := `
	unsigned int ok(void) {
		return 1;
	}
	unsigned int mixed(unsigned int x) {
		return x;
	}
	void main(void) {
		if (ok() == 1) { success(); }
		unsigned int m = mixed(2);
		if (m == 2) { halt(); }
		halt();
	}
	`
	m, rep := lowerSrc(t, src, false)
	if err := Instrument(m, Config{Returns: true}, rep); err != nil {
		t.Fatal(err)
	}
	if rep.ReturnsRewritten != 1 {
		t.Fatalf("returns rewritten = %d, want 1 (only ok())", rep.ReturnsRewritten)
	}
	codes, _ := rs.Codes(1)
	f, _ := m.Func("ok")
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst && in.Imm == codes[0] {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("ok() does not return the RS code %#x", codes[0])
	}
	// mixed() returns a parameter and must be untouched.
	fm, _ := m.Func("mixed")
	for _, b := range fm.Blocks {
		for _, in := range b.Instrs {
			if in.GR {
				t.Errorf("mixed() was instrumented: %v", in)
			}
		}
	}
}

func TestDelayInsertion(t *testing.T) {
	m, rep := lowerSrc(t, ifSrc, false)
	if err := Instrument(m, Config{Delay: true}, rep); err != nil {
		t.Fatal(err)
	}
	if rep.DelaysInserted == 0 {
		t.Fatal("no delays inserted")
	}
	f, _ := m.Func("main")
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil || term.Op == ir.OpRet || b.Name == DetectBlock {
			continue
		}
		if len(b.Instrs) < 2 {
			t.Fatalf("block %q too small for delay", b.Name)
		}
		prev := b.Instrs[len(b.Instrs)-2]
		if prev.Op != ir.OpCall || prev.Callee != DelayFunc {
			t.Errorf("block %q lacks delay before terminator: %v", b.Name, prev)
		}
	}
}

func TestInstrumentedModulesVerify(t *testing.T) {
	srcs := []string{guardSrc, ifSrc, `
	enum status { S0, S1, S2 };
	volatile unsigned int x;
	unsigned int classify(unsigned int v) {
		if (v == 0) { return S0; }
		if (v < 10) { return S1; }
		return S2;
	}
	void main(void) {
		for (unsigned int i = 0; i < 3; i = i + 1) {
			x = x + i;
		}
		if (classify(x) == S1) { success(); }
		halt();
	}
	`}
	for _, src := range srcs {
		m, rep := lowerSrc(t, src, true)
		cfg := All()
		// Only protect globals that exist.
		if _, ok := m.Global("x"); ok {
			cfg.Sensitive = []string{"x"}
		}
		if err := Instrument(m, cfg, rep); err != nil {
			t.Fatalf("instrument: %v\n%s", err, m)
		}
	}
}

func TestConfigNames(t *testing.T) {
	names := map[string]Config{
		"None":       None(),
		"All":        All(),
		"All\\Delay": AllButDelay(),
		"Branches":   {Branches: true},
		"Delay":      {Delay: true},
		"Integrity":  {Integrity: true},
		"Loops":      {Loops: true},
		"Returns":    {Returns: true},
	}
	for want, cfg := range names {
		if got := cfg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestDelayOptInOptOut(t *testing.T) {
	src := `
	unsigned int helper(unsigned int x) {
		if (x == 0) { return 1; }
		return 2;
	}
	void main(void) {
		unsigned int v = helper(3);
		if (v == 2) { success(); }
		halt();
	}
	`
	count := func(cfg Config) (mainDelays, helperDelays int) {
		m, rep := lowerSrc(t, src, false)
		if err := Instrument(m, cfg, rep); err != nil {
			t.Fatal(err)
		}
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpCall && in.Callee == DelayFunc {
						if f.Name == "main" {
							mainDelays++
						} else {
							helperDelays++
						}
					}
				}
			}
		}
		return
	}
	mAll, hAll := count(Config{Delay: true})
	if mAll == 0 || hAll == 0 {
		t.Fatalf("default delay config skipped functions: main=%d helper=%d", mAll, hAll)
	}
	mIn, hIn := count(Config{Delay: true, DelayOptIn: []string{"main"}})
	if mIn == 0 || hIn != 0 {
		t.Errorf("opt-in main: main=%d helper=%d", mIn, hIn)
	}
	mOut, hOut := count(Config{Delay: true, DelayOptOut: []string{"main"}})
	if mOut != 0 || hOut == 0 {
		t.Errorf("opt-out main: main=%d helper=%d", mOut, hOut)
	}
	m, rep := lowerSrc(t, src, false)
	err := Instrument(m, Config{
		Delay: true, DelayOptIn: []string{"a"}, DelayOptOut: []string{"b"},
	}, rep)
	if err == nil {
		t.Error("conflicting opt-in and opt-out accepted")
	}
}
