package passes

import (
	"fmt"

	"glitchlab/internal/ir"
)

// shadowName returns the integrity twin's name for a protected global.
func shadowName(g string) string { return "__gr_shadow_" + g }

// protectGlobals applies the data-integrity defense (paper Section VI-B):
// each sensitive global gets a shadow in a separate memory region holding
// its bitwise complement. Stores update both copies; loads verify
// var ^ shadow == ~0 and divert to the detection handler on mismatch.
func protectGlobals(m *ir.Module, sensitive []string, rep *Report) error {
	want := map[string]bool{}
	for _, name := range sensitive {
		want[name] = true
	}
	protected := map[string]bool{}
	for _, g := range m.Globals {
		if !want[g.Name] {
			continue
		}
		if g.IsShadow {
			return fmt.Errorf("passes: cannot protect shadow %q", g.Name)
		}
		g.Sensitive = true
		g.Shadow = shadowName(g.Name)
		protected[g.Name] = true
		rep.ShadowedGlobals++
	}
	for name := range want {
		if !protected[name] {
			return fmt.Errorf("passes: sensitive global %q not found", name)
		}
	}
	if len(protected) == 0 {
		return nil
	}
	for name := range protected {
		m.Globals = append(m.Globals, &ir.Global{
			Name:     shadowName(name),
			IsShadow: true,
		})
	}
	for _, f := range m.Funcs {
		instrumentIntegrity(f, protected)
	}
	return nil
}

// instrumentIntegrity rewrites one function: after every store to a
// protected global, the complement is stored to the shadow; every load is
// followed by a verification that splits the containing block.
func instrumentIntegrity(f *ir.Func, protected map[string]bool) {
	splitCounter := 0
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			switch {
			case in.Op == ir.OpStoreG && protected[in.GName] && !in.GR:
				// store g = v  =>  also store shadow = ~v.
				ones := f.NewValue()
				inv := f.NewValue()
				extra := []*ir.Instr{
					{Op: ir.OpConst, Dst: ones, Imm: 0xFFFFFFFF,
						A: ir.NoValue, B: ir.NoValue, GR: true},
					{Op: ir.OpBin, BinOp: ir.BinXor, Dst: inv,
						A: in.A, B: ones, GR: true},
					{Op: ir.OpStoreG, GName: shadowName(in.GName), A: inv,
						Volatile: true, Dst: ir.NoValue, B: ir.NoValue, GR: true},
				}
				b.Instrs = insertAfter(b.Instrs, i, extra)
				i += len(extra)
			case in.Op == ir.OpLoadG && protected[in.GName] && !in.GR:
				// v = load g  =>  s = load shadow; if v^s != ~0: detect.
				shadow := f.NewValue()
				x := f.NewValue()
				ones := f.NewValue()
				ok := f.NewValue()
				check := []*ir.Instr{
					{Op: ir.OpLoadG, Dst: shadow, GName: shadowName(in.GName),
						Volatile: true, A: ir.NoValue, B: ir.NoValue, GR: true},
					{Op: ir.OpBin, BinOp: ir.BinXor, Dst: x,
						A: in.Dst, B: shadow, GR: true},
					{Op: ir.OpConst, Dst: ones, Imm: 0xFFFFFFFF,
						A: ir.NoValue, B: ir.NoValue, GR: true},
					{Op: ir.OpBin, BinOp: ir.BinEq, Dst: ok,
						A: x, B: ones, GR: true},
				}
				// Split the block after the load: the remainder moves to
				// a continuation block, and the check branches to it.
				contName := fmt.Sprintf("%s.gri%d", b.Name, splitCounter)
				splitCounter++
				cont := &ir.Block{
					Name:   contName,
					Instrs: append([]*ir.Instr(nil), b.Instrs[i+1:]...),
					// The guard terminator moves into the continuation,
					// so loop-header status moves with it.
					IsLoopHeader: b.IsLoopHeader,
				}
				b.IsLoopHeader = false
				detect := ensureDetectBlock(f)
				b.Instrs = append(b.Instrs[:i+1], check...)
				b.Instrs = append(b.Instrs, &ir.Instr{
					Op: ir.OpCondBr, A: ok,
					TrueBlk: contName, FalseBlk: detect,
					Dst: ir.NoValue, B: ir.NoValue, GR: true,
				})
				// Insert the continuation right after this block to keep
				// layout (and reading order) sane, then reindex.
				f.Blocks = append(f.Blocks, nil)
				copy(f.Blocks[bi+2:], f.Blocks[bi+1:])
				f.Blocks[bi+1] = cont
				f.Reindex()
				// The rest of this block moved to cont; the outer loop
				// will visit cont next and continue scanning there.
				i = len(b.Instrs)
			}
		}
	}
}

// insertAfter inserts extra after index i.
func insertAfter(instrs []*ir.Instr, i int, extra []*ir.Instr) []*ir.Instr {
	out := make([]*ir.Instr, 0, len(instrs)+len(extra))
	out = append(out, instrs[:i+1]...)
	out = append(out, extra...)
	out = append(out, instrs[i+1:]...)
	return out
}
