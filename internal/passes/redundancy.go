package passes

import (
	"fmt"

	"glitchlab/internal/ir"
)

// defines reports whether in defines a value (Dst is only meaningful for
// these operations; for the rest it holds its zero value).
func defines(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpLoadSlot, ir.OpLoadG, ir.OpBin, ir.OpNot:
		return true
	case ir.OpCall:
		return in.Dst != ir.NoValue
	default:
		return false
	}
}

// findDef locates the defining instruction of v inside block b.
func findDef(b *ir.Block, v ir.Value) *ir.Instr {
	if v == ir.NoValue {
		return nil
	}
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		if in := b.Instrs[i]; defines(in) && in.Dst == v {
			return in
		}
	}
	return nil
}

// replicator rebuilds the computation chain of a value with fresh
// instructions, following the paper's rules: constants, arithmetic and
// non-volatile loads are replicated; volatile loads, calls and anything
// defined outside the block are reused as-is (they may have side effects
// or change between evaluations).
type replicator struct {
	f     *ir.Func
	b     *ir.Block
	fresh []*ir.Instr
}

// replicate returns a value equivalent to v, newly computed where
// possible. The second result reports whether any instruction was actually
// replicated (if false, the redundant check still re-executes the branch,
// protecting against branch-instruction corruption but not value
// corruption — the paper's volatile caveat).
func (r *replicator) replicate(v ir.Value) (ir.Value, bool) {
	def := findDef(r.b, v)
	if def == nil {
		return v, false // defined in another block: reuse
	}
	switch def.Op {
	case ir.OpConst:
		dst := r.f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpConst, Dst: dst, Imm: def.Imm,
			A: ir.NoValue, B: ir.NoValue, GR: true,
		})
		return dst, true
	case ir.OpLoadSlot:
		if def.Volatile {
			return v, false
		}
		dst := r.f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpLoadSlot, Dst: dst, Slot: def.Slot,
			A: ir.NoValue, B: ir.NoValue, GR: true,
		})
		return dst, true
	case ir.OpLoadG:
		if def.Volatile {
			return v, false
		}
		dst := r.f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpLoadG, Dst: dst, GName: def.GName,
			A: ir.NoValue, B: ir.NoValue, GR: true,
		})
		return dst, true
	case ir.OpBin:
		a, _ := r.replicate(def.A)
		b, _ := r.replicate(def.B)
		dst := r.f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpBin, BinOp: def.BinOp, Dst: dst, A: a, B: b, GR: true,
		})
		return dst, true
	case ir.OpNot:
		a, _ := r.replicate(def.A)
		dst := r.f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpNot, Dst: dst, A: a, B: ir.NoValue, GR: true,
		})
		return dst, true
	default:
		// Calls and stores are never replicated.
		return v, false
	}
}

// buildCheck constructs the redundant-check block for a conditional branch
// whose condition value is cond and which is known to have evaluated to
// `outcome` on this edge. The check re-derives the condition — in
// complemented form when it is a comparison, so that repeating the exact
// same bit flips cannot satisfy both checks (paper Section VI-B) — and
// branches to cont if it still agrees, or to the detect block otherwise.
func buildCheck(f *ir.Func, b *ir.Block, cond ir.Value, outcome bool,
	cont string, name string) *ir.Block {
	detect := ensureDetectBlock(f)
	check := &ir.Block{Name: name}
	r := &replicator{f: f, b: b}

	var verdict ir.Value // non-zero iff the re-check agrees with outcome
	def := findDef(b, cond)
	if def != nil && def.Op == ir.OpBin && def.BinOp.IsComparison() {
		a, _ := r.replicate(def.A)
		bb, _ := r.replicate(def.B)
		// Complement both operands: ~a <pred'> ~b is equivalent to
		// a <pred> b with the comparison direction swapped, so the
		// recomputed check uses opposite-polarity data paths.
		ones := f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpConst, Dst: ones, Imm: 0xFFFFFFFF,
			A: ir.NoValue, B: ir.NoValue, GR: true,
		})
		na := f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpBin, BinOp: ir.BinXor, Dst: na, A: a, B: ones, GR: true,
		})
		nb := f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpBin, BinOp: ir.BinXor, Dst: nb, A: bb, B: ones, GR: true,
		})
		pred := def.BinOp.Swap()
		if !outcome {
			pred = pred.Negate()
		}
		verdict = f.NewValue()
		r.fresh = append(r.fresh, &ir.Instr{
			Op: ir.OpBin, BinOp: pred, Dst: verdict, A: na, B: nb, GR: true,
		})
	} else {
		// Non-comparison condition: re-derive the truth value.
		v, _ := r.replicate(cond)
		verdict = f.NewValue()
		op := ir.BinNe // agree when truthy
		if !outcome {
			op = ir.BinEq // agree when zero
		}
		zero := f.NewValue()
		r.fresh = append(r.fresh,
			&ir.Instr{Op: ir.OpConst, Dst: zero, Imm: 0,
				A: ir.NoValue, B: ir.NoValue, GR: true},
			&ir.Instr{Op: ir.OpBin, BinOp: op, Dst: verdict, A: v, B: zero, GR: true},
		)
	}
	check.Instrs = append(check.Instrs, r.fresh...)
	check.Instrs = append(check.Instrs, &ir.Instr{
		Op: ir.OpCondBr, A: verdict,
		TrueBlk: cont, FalseBlk: detect,
		Dst: ir.NoValue, B: ir.NoValue, GR: true,
	})
	return check
}

// insertBlockAfter places nb immediately after b in layout order. Layout
// adjacency matters for glitch robustness: the code generator emits blocks
// in layout order, so a check block that directly follows its guard is
// still reached even if the branch instruction into it is glitched into a
// fall-through (the paper's LLVM passes get the same property from
// LLVM's block placement).
func insertBlockAfter(f *ir.Func, b *ir.Block, nb *ir.Block) {
	for i, cur := range f.Blocks {
		if cur == b {
			f.Blocks = append(f.Blocks, nil)
			copy(f.Blocks[i+2:], f.Blocks[i+1:])
			f.Blocks[i+1] = nb
			f.Reindex()
			return
		}
	}
	f.AddBlock(nb)
}

// hardenBranches re-checks the true edge of every conditional branch,
// following the paper's assumption that security-critical operations sit
// behind the taken edge of a guard.
func hardenBranches(m *ir.Module, rep *Report) {
	for _, f := range m.Funcs {
		n := 0
		for _, b := range snapshot(f) {
			term := b.Term()
			if term == nil || term.Op != ir.OpCondBr || term.GR {
				continue
			}
			name := fmt.Sprintf("%s.grbr%d", b.Name, n)
			n++
			check := buildCheck(f, b, term.A, true, term.TrueBlk, name)
			insertBlockAfter(f, b, check)
			term.TrueBlk = name
			rep.BranchesHardened++
		}
	}
}

// hardenLoops re-checks the false (exit) edge of loop guards: the paper's
// second pass, because for loops the interesting transition is leaving the
// loop.
func hardenLoops(m *ir.Module, rep *Report) {
	for _, f := range m.Funcs {
		n := 0
		for _, b := range snapshot(f) {
			if !b.IsLoopHeader {
				continue
			}
			term := b.Term()
			if term == nil || term.Op != ir.OpCondBr || term.GR {
				continue
			}
			name := fmt.Sprintf("%s.grlp%d", b.Name, n)
			n++
			check := buildCheck(f, b, term.A, false, term.FalseBlk, name)
			insertBlockAfter(f, b, check)
			term.FalseBlk = name
			rep.LoopsHardened++
		}
	}
}

// insertDelays calls the random-delay runtime at the end of every basic
// block that ends in a branch (conditional or not), so any observable
// trigger necessarily precedes a random wait (paper Section VI-B1). The
// opt-in/opt-out lists narrow which functions are instrumented.
func insertDelays(m *ir.Module, cfg Config, rep *Report) {
	optIn := map[string]bool{}
	for _, name := range cfg.DelayOptIn {
		optIn[name] = true
	}
	optOut := map[string]bool{}
	for _, name := range cfg.DelayOptOut {
		optOut[name] = true
	}
	for _, f := range m.Funcs {
		if len(optIn) > 0 && !optIn[f.Name] {
			continue
		}
		if optOut[f.Name] {
			continue
		}
		for _, b := range f.Blocks {
			if b.Name == DetectBlock {
				continue
			}
			term := b.Term()
			if term == nil || term.Op == ir.OpRet {
				continue
			}
			call := &ir.Instr{
				Op: ir.OpCall, Callee: DelayFunc, Dst: ir.NoValue,
				A: ir.NoValue, B: ir.NoValue, GR: true,
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1],
				call, b.Instrs[len(b.Instrs)-1])
			rep.DelaysInserted++
		}
	}
}

// snapshot copies the block list so passes can append blocks while
// iterating.
func snapshot(f *ir.Func) []*ir.Block {
	return append([]*ir.Block(nil), f.Blocks...)
}
