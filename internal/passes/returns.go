package passes

import (
	"sort"

	"glitchlab/internal/ir"
	"glitchlab/internal/rs"
)

// rsCodes wraps the Reed-Solomon constant generator.
func rsCodes(count int) ([]uint32, error) {
	return rs.Codes(count)
}

// hardenReturns applies the non-trivial-return-codes defense (paper
// Section VI-A): a function qualifies when every return statement returns
// a literal constant and every caller uses the result exclusively in
// equality comparisons against constants. Each distinct returned constant
// is replaced by a Reed-Solomon code, and the call-site comparison
// constants are rewritten to match.
func hardenReturns(m *ir.Module, rep *Report) error {
	for _, f := range m.Funcs {
		if !f.ReturnsVal || f.Name == "main" {
			continue
		}
		consts, ok := returnedConstants(f)
		if !ok || len(consts) == 0 {
			continue
		}
		sites, ok := conformingCallSites(m, f.Name, consts)
		if !ok {
			continue
		}
		// Map each distinct constant (sorted for determinism) to a code.
		sorted := make([]uint32, 0, len(consts))
		for v := range consts {
			sorted = append(sorted, v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		codes, err := rsCodes(len(sorted))
		if err != nil {
			return err
		}
		mapping := make(map[uint32]uint32, len(sorted))
		for i, v := range sorted {
			mapping[v] = codes[i]
		}
		// Rewrite the returns.
		for _, b := range f.Blocks {
			term := b.Term()
			if term == nil || term.Op != ir.OpRet || term.A == ir.NoValue {
				continue
			}
			def := findDef(b, term.A)
			def.Imm = mapping[def.Imm]
			def.GR = true
		}
		// Rewrite the call-site comparisons.
		for _, site := range sites {
			site.Imm = mapping[site.Imm]
			site.GR = true
		}
		rep.ReturnsRewritten++
	}
	return nil
}

// ReturnConstSet describes one function whose every return statement
// returns a literal constant — the shape the non-trivial-return-codes
// defense targets. Hardenable additionally requires every call site to use
// the result only in equality comparisons against returned constants (the
// same qualification hardenReturns applies); when false the defense will
// skip the function and any low-distance return set needs a manual fix.
type ReturnConstSet struct {
	Func       string
	Values     []uint32 // distinct returned constants, ascending
	Hardenable bool
}

// ReturnConstSets surveys the module for constant-return functions, the
// analysis half of hardenReturns exposed for static analyzers. main and
// void functions are excluded, as the defense excludes them.
func ReturnConstSets(m *ir.Module) []ReturnConstSet {
	var sets []ReturnConstSet
	for _, f := range m.Funcs {
		if !f.ReturnsVal || f.Name == "main" {
			continue
		}
		consts, ok := returnedConstants(f)
		if !ok || len(consts) == 0 {
			continue
		}
		values := make([]uint32, 0, len(consts))
		for v := range consts {
			values = append(values, v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		_, conforms := conformingCallSites(m, f.Name, consts)
		sets = append(sets, ReturnConstSet{
			Func: f.Name, Values: values, Hardenable: conforms,
		})
	}
	return sets
}

// returnedConstants collects the set of constants a function returns; ok
// is false if any return value is not a block-local constant.
func returnedConstants(f *ir.Func) (map[uint32]bool, bool) {
	consts := map[uint32]bool{}
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil || term.Op != ir.OpRet {
			continue
		}
		if term.A == ir.NoValue {
			return nil, false
		}
		def := findDef(b, term.A)
		if def == nil || def.Op != ir.OpConst {
			return nil, false
		}
		consts[def.Imm] = true
	}
	return consts, true
}

// conformingCallSites checks every call to callee across the module: each
// result must be used only in equality comparisons whose other operand is
// a constant drawn from the callee's return set. It returns the constant
// definitions to rewrite.
func conformingCallSites(m *ir.Module, callee string,
	returned map[uint32]bool) ([]*ir.Instr, bool) {
	var rewrites []*ir.Instr
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall || in.Callee != callee ||
					in.Dst == ir.NoValue {
					continue
				}
				consts, ok := resultComparedToConsts(f, in.Dst, returned)
				if !ok {
					return nil, false
				}
				rewrites = append(rewrites, consts...)
			}
		}
	}
	return rewrites, true
}

// resultComparedToConsts finds every use of v in f and checks it is an
// eq/ne comparison against a constant in the returned set; it returns the
// constant-defining instructions.
func resultComparedToConsts(f *ir.Func, v ir.Value,
	returned map[uint32]bool) ([]*ir.Instr, bool) {
	var consts []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !uses(in, v) {
				continue
			}
			// The result may be spilled to a local (r = check(...)); the
			// local then stands in for the result, provided nothing else
			// writes it.
			if in.Op == ir.OpStoreSlot && in.A == v {
				slotConsts, ok := slotComparedToConsts(f, in.Slot, in, returned)
				if !ok {
					return nil, false
				}
				consts = append(consts, slotConsts...)
				continue
			}
			if in.Op != ir.OpBin || (in.BinOp != ir.BinEq && in.BinOp != ir.BinNe) {
				return nil, false
			}
			other := in.B
			if other == v {
				other = in.A
			}
			def := findDefAnywhere(f, other)
			if def == nil || def.Op != ir.OpConst || !returned[def.Imm] {
				return nil, false
			}
			consts = append(consts, def)
		}
	}
	return consts, true
}

// slotComparedToConsts verifies that a slot holding a hardened call result
// is written only by that call's spill (theStore) and that every load of it
// feeds exclusively eq/ne comparisons against constants from the returned
// set. It returns the comparison-constant definitions to rewrite.
func slotComparedToConsts(f *ir.Func, slot int, theStore *ir.Instr,
	returned map[uint32]bool) ([]*ir.Instr, bool) {
	var consts []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpStoreSlot && in.Slot == slot && in != theStore:
				return nil, false // aliased write: give up, like the paper
			case in.Op == ir.OpLoadSlot && in.Slot == slot:
				// Every use of the loaded value must be a comparison
				// against an expected constant.
				cs, ok := valueComparedToConsts(f, in.Dst, returned)
				if !ok {
					return nil, false
				}
				consts = append(consts, cs...)
			}
		}
	}
	return consts, true
}

// valueComparedToConsts is the leaf rule: each use of v must be an eq/ne
// against a constant from the returned set.
func valueComparedToConsts(f *ir.Func, v ir.Value,
	returned map[uint32]bool) ([]*ir.Instr, bool) {
	var consts []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !uses(in, v) {
				continue
			}
			if in.Op != ir.OpBin || (in.BinOp != ir.BinEq && in.BinOp != ir.BinNe) {
				return nil, false
			}
			other := in.B
			if other == v {
				other = in.A
			}
			def := findDefAnywhere(f, other)
			if def == nil || def.Op != ir.OpConst || !returned[def.Imm] {
				return nil, false
			}
			consts = append(consts, def)
		}
	}
	return consts, true
}

// readOperands returns the values an instruction actually reads (other
// Value fields hold meaningless zero values for ops that do not use them).
func readOperands(in *ir.Instr) []ir.Value {
	switch in.Op {
	case ir.OpStoreSlot, ir.OpStoreG, ir.OpNot, ir.OpCondBr:
		return []ir.Value{in.A}
	case ir.OpBin:
		return []ir.Value{in.A, in.B}
	case ir.OpCall:
		return in.Args
	case ir.OpRet:
		if in.A == ir.NoValue {
			return nil
		}
		return []ir.Value{in.A}
	default:
		return nil
	}
}

// uses reports whether in reads value v.
func uses(in *ir.Instr, v ir.Value) bool {
	for _, op := range readOperands(in) {
		if op == v {
			return true
		}
	}
	return false
}

// findDefAnywhere locates a value's defining instruction across all
// blocks.
func findDefAnywhere(f *ir.Func, v ir.Value) *ir.Instr {
	for _, b := range f.Blocks {
		if def := findDef(b, v); def != nil {
			return def
		}
	}
	return nil
}
