// Package passes implements GlitchResistor's six software-only glitching
// defenses (paper Section VI) as transformations over the IR and the
// checked AST:
//
//   - ENUM rewriting: uninitialized enums get Reed-Solomon-coded values
//     with large pairwise Hamming distance (constant diversification);
//   - Non-trivial return codes: functions returning constants that are
//     only compared against constants get the same treatment;
//   - Data integrity: sensitive globals gain an inverted shadow copy in a
//     separate memory region, checked on every load;
//   - Branch redundancy: every conditional branch's true edge re-checks
//     the condition in complemented form;
//   - Loop hardening: loop guards get the same re-check on the false
//     (exit) edge;
//   - Random delay: a PRNG-driven busy loop before every branch breaks
//     the fixed trigger-to-target timing glitching relies on.
package passes

import (
	"fmt"
	"strings"
	"time"

	"glitchlab/internal/ir"
	"glitchlab/internal/minic"
	"glitchlab/internal/obs"
)

// Config selects which defenses are applied. The zero value is the
// unprotected baseline.
type Config struct {
	EnumRewrite bool
	Returns     bool
	Integrity   bool
	Branches    bool
	Loops       bool
	Delay       bool
	// Sensitive lists the globals protected by the integrity defense
	// (the paper's developer-provided configuration file).
	Sensitive []string

	// DelayOptIn restricts the random-delay defense to the listed
	// functions; DelayOptOut exempts the listed functions. The paper's
	// module supports exactly these two configuration modes
	// (Section VI-B1); at most one list may be set. An empty
	// configuration instruments every function.
	DelayOptIn  []string
	DelayOptOut []string
}

// All returns the full defense set, protecting the given sensitive globals.
func All(sensitive ...string) Config {
	return Config{
		EnumRewrite: true, Returns: true, Integrity: true,
		Branches: true, Loops: true, Delay: true,
		Sensitive: sensitive,
	}
}

// AllButDelay returns every defense except the random delay — the paper's
// "All\Delay" configuration.
func AllButDelay(sensitive ...string) Config {
	c := All(sensitive...)
	c.Delay = false
	return c
}

// None returns the unprotected baseline configuration.
func None() Config { return Config{} }

// Name returns the paper's label for well-known configurations.
func (c Config) Name() string {
	switch {
	case !c.EnumRewrite && !c.Returns && !c.Integrity && !c.Branches &&
		!c.Loops && !c.Delay:
		return "None"
	case c.EnumRewrite && c.Returns && c.Integrity && c.Branches && c.Loops:
		if c.Delay {
			return "All"
		}
		return "All\\Delay"
	case c.Branches && !c.Loops && !c.Delay && !c.Integrity && !c.Returns:
		return "Branches"
	case c.Loops && !c.Branches && !c.Delay && !c.Integrity && !c.Returns:
		return "Loops"
	case c.Delay && !c.Branches && !c.Loops && !c.Integrity && !c.Returns:
		return "Delay"
	case c.Integrity && !c.Branches && !c.Loops && !c.Delay && !c.Returns:
		return "Integrity"
	case c.Returns && !c.Branches && !c.Loops && !c.Delay && !c.Integrity:
		return "Returns"
	default:
		return "Custom"
	}
}

// Report summarizes what each pass instrumented.
type Report struct {
	EnumsRewritten   int
	EnumValues       int
	ReturnsRewritten int
	ShadowedGlobals  int
	BranchesHardened int
	LoopsHardened    int
	DelaysInserted   int
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf(
		"enums=%d (values=%d) returns=%d shadows=%d branches=%d loops=%d delays=%d",
		r.EnumsRewritten, r.EnumValues, r.ReturnsRewritten, r.ShadowedGlobals,
		r.BranchesHardened, r.LoopsHardened, r.DelaysInserted)
}

// DetectBlock is the per-function block that reacts to a detected glitch.
// Static analysis (internal/analyze) uses it to recognize GR-inserted
// check blocks by their detect edge.
const DetectBlock = "grdetect"

// DetectFunc is the runtime entry invoked on detection; the developer
// supplies the reaction (paper Section VI-B "Detection Reaction"). The
// code generator provides a default that parks the CPU at a stop symbol.
const DetectFunc = "__gr_detected"

// DelayFunc is the runtime random-delay entry.
const DelayFunc = "__gr_delay"

// durationBuckets hold per-pass wall times (µs) from sub-10µs rewrites to
// multi-millisecond whole-module instrumentation.
var durationBuckets = obs.ExpBuckets(10, 4, 8)

// countInstrs sizes a module in IR instructions, the unit the per-pass
// size-delta metrics are measured in.
func countInstrs(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// timed runs one defense pass, recording its duration and IR size delta
// into the default metrics registry (passes.<name>.duration_us,
// passes.<name>.instr_delta).
func timed(name string, m *ir.Module, fn func() error) error {
	start := time.Now()
	before := countInstrs(m)
	err := fn()
	obs.Default.Histogram("passes."+name+".duration_us", durationBuckets).
		Observe(float64(time.Since(start).Microseconds()))
	obs.Default.Gauge("passes." + name + ".instr_delta").
		Add(float64(countInstrs(m) - before))
	return err
}

// RewriteEnums applies the constant-diversification source rewriter to the
// checked program. It must run before ir.Lower. It mirrors the paper's
// clang-based ENUM Rewriter: only enums with every member uninitialized are
// rewritten (explicit values may be protocol constants).
func RewriteEnums(c *minic.Checked, rep *Report) error {
	start := time.Now()
	defer func() {
		obs.Default.Histogram("passes.enums.duration_us", durationBuckets).
			Observe(float64(time.Since(start).Microseconds()))
	}()
	for _, e := range c.Prog.Enums {
		if !e.AllUninitialized() {
			continue
		}
		codes, err := rsCodes(len(e.Members))
		if err != nil {
			return fmt.Errorf("passes: enum %s: %w", e.Name, err)
		}
		for i, m := range e.Members {
			m.Value = codes[i]
		}
		rep.EnumsRewritten++
		rep.EnumValues += len(e.Members)
	}
	return nil
}

// Instrument applies the configured IR-level defenses in a fixed order:
// return-code hardening, data integrity, branch redundancy, loop
// hardening, then random delays.
func Instrument(m *ir.Module, cfg Config, rep *Report) error {
	if cfg.Returns {
		if err := timed("returns", m, func() error { return hardenReturns(m, rep) }); err != nil {
			return err
		}
	}
	if cfg.Integrity {
		if err := timed("integrity", m, func() error { return protectGlobals(m, cfg.Sensitive, rep) }); err != nil {
			return err
		}
	}
	if cfg.Branches {
		_ = timed("branches", m, func() error { hardenBranches(m, rep); return nil })
	}
	if cfg.Loops {
		_ = timed("loops", m, func() error { hardenLoops(m, rep); return nil })
	}
	if cfg.Delay {
		if len(cfg.DelayOptIn) > 0 && len(cfg.DelayOptOut) > 0 {
			return fmt.Errorf("passes: delay opt-in and opt-out are mutually exclusive")
		}
		_ = timed("delay", m, func() error { insertDelays(m, cfg, rep); return nil })
	}
	return timed("verify", m, m.Verify)
}

// Parse builds a Config from a comma-separated defense list and a list of
// sensitive globals, the syntax both CLIs share. Recognized defense names
// are enums, returns, integrity, branches, loops and delay, plus the
// shorthands "all", "all-but-delay" and "none".
func Parse(defenses string, sensitive []string) (Config, error) {
	switch defenses {
	case "all":
		return All(sensitive...), nil
	case "all-but-delay":
		return AllButDelay(sensitive...), nil
	case "none":
		return None(), nil
	}
	cfg := Config{Sensitive: sensitive}
	for _, name := range strings.Split(defenses, ",") {
		switch strings.TrimSpace(name) {
		case "enums":
			cfg.EnumRewrite = true
		case "returns":
			cfg.Returns = true
		case "integrity":
			cfg.Integrity = true
		case "branches":
			cfg.Branches = true
		case "loops":
			cfg.Loops = true
		case "delay":
			cfg.Delay = true
		case "":
		default:
			return cfg, fmt.Errorf("unknown defense %q", name)
		}
	}
	return cfg, nil
}

// ensureDetectBlock returns the function's glitch-reaction block, creating
// it on first use: it calls the detection handler and then self-loops (the
// handler is expected not to return, but control flow must stay defined
// even if an attacker glitches the call).
func ensureDetectBlock(f *ir.Func) string {
	if _, ok := f.Block(DetectBlock); ok {
		return DetectBlock
	}
	b := &ir.Block{Name: DetectBlock}
	b.Instrs = append(b.Instrs,
		&ir.Instr{Op: ir.OpCall, Callee: DetectFunc, Dst: ir.NoValue,
			A: ir.NoValue, B: ir.NoValue, GR: true},
		&ir.Instr{Op: ir.OpJmp, Target: DetectBlock,
			A: ir.NoValue, GR: true},
	)
	f.AddBlock(b)
	return DetectBlock
}
