package emu

import (
	"errors"
	"fmt"

	"glitchlab/internal/isa"
)

// FaultKind classifies an execution fault, mirroring the taxonomy used by
// the paper's emulation campaign.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone        FaultKind = iota
	FaultBadRead               // data read from unmapped/unreadable memory
	FaultBadWrite              // data write to unmapped/unwritable memory
	FaultBadFetch              // instruction fetch from unmapped memory
	FaultInvalidInst           // encoding the architecture leaves undefined
	FaultUnaligned             // unaligned data access (HardFault on M0)
	FaultUndefined             // UDF instruction executed
	FaultBreakpoint            // BKPT executed
	FaultSupervisor            // SVC executed
)

var faultNames = [...]string{
	"none", "bad read", "bad write", "bad fetch", "invalid instruction",
	"unaligned access", "undefined instruction", "breakpoint", "svc",
}

// String returns a human-readable fault name.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault%d", uint8(k))
}

// Fault is the error returned when execution raises a hardware fault.
type Fault struct {
	Kind FaultKind
	Addr uint32 // faulting data/fetch address
	PC   uint32 // address of the faulting instruction
}

func (f *Fault) Error() string {
	return fmt.Sprintf("emu: %s at pc=%#x addr=%#x", f.Kind, f.PC, f.Addr)
}

// ErrStepLimit is returned by Run when the step budget is exhausted without
// reaching the stop address (the program is considered hung).
var ErrStepLimit = errors.New("emu: step limit exceeded")

// Hooks are optional callbacks the pipeline and glitcher use to observe and
// perturb execution. All hooks may be nil.
type Hooks struct {
	// FetchOverride can replace an instruction halfword as it is fetched
	// (transient corruption: memory itself is not modified).
	FetchOverride func(addr uint32, hw uint16) uint16
	// LoadOverride can replace data as it is loaded from memory.
	LoadOverride func(addr uint32, size uint32, val uint32) uint32
	// OnStore observes completed data stores (peripheral side effects
	// such as the GPIO trigger and flash programming latch onto this).
	OnStore func(addr uint32, size uint32, val uint32)
	// OnExec observes each instruction immediately before it executes.
	OnExec func(addr uint32, in isa.Inst)
	// OnFault observes every hardware fault Step raises, before it is
	// returned as an error. Observability counters (internal/obs) latch
	// onto this; the zero-value hook keeps the hot path branch-predictable
	// and allocation-free.
	OnFault func(f *Fault)
}

// CPU is an ARMv6-M Thumb core.
type CPU struct {
	R     [16]uint32 // core registers; R[15] is the current instruction address
	Flags isa.Flags
	Mem   *Memory
	Hooks Hooks

	// ZeroIsInvalid makes the all-zero halfword decode as an invalid
	// instruction instead of its architectural "movs r0, r0" meaning.
	// Figure 2c uses this to test the paper's ISA-hardening hypothesis.
	ZeroIsInvalid bool

	// Cycles counts executed clock cycles using Cortex-M0 costs.
	Cycles uint64
	// Steps counts retired instructions.
	Steps uint64

	// fetchRegion caches the region the last instruction fetch hit, so
	// straight-line execution skips the memory map's linear region search.
	// Regions are immutable once mapped and a CPU stays attached to one
	// Memory, so the cache never goes stale; Reset clears it anyway.
	fetchRegion *Region
}

// New returns a CPU attached to the given memory.
func New(mem *Memory) *CPU {
	return &CPU{Mem: mem}
}

// Reset clears registers, flags and counters, and sets SP and PC.
func (c *CPU) Reset(sp, pc uint32) {
	c.R = [16]uint32{}
	c.Flags = isa.Flags{}
	c.Cycles = 0
	c.Steps = 0
	c.fetchRegion = nil
	c.R[isa.SP] = sp
	c.R[isa.PC] = pc &^ 1
}

// PC returns the current instruction address.
func (c *CPU) PC() uint32 { return c.R[isa.PC] }

func (c *CPU) fetch16(addr uint32) (uint16, error) {
	if addr%2 != 0 {
		return 0, &Fault{Kind: FaultBadFetch, Addr: addr, PC: addr}
	}
	r := c.fetchRegion
	if r == nil || !r.contains(addr, 2) {
		var ok bool
		r, ok = c.Mem.Region(addr, 2)
		if !ok || r.Perm&PermExec == 0 {
			return 0, &Fault{Kind: FaultBadFetch, Addr: addr, PC: addr}
		}
		c.fetchRegion = r // only executable regions are ever cached
	}
	off := addr - r.Base
	hw := uint16(r.Data[off]) | uint16(r.Data[off+1])<<8
	if c.Hooks.FetchOverride != nil {
		hw = c.Hooks.FetchOverride(addr, hw)
	}
	return hw, nil
}

// Step executes one instruction and returns its cycle cost.
func (c *CPU) Step() (int, error) {
	cost, err := c.step()
	if err != nil && c.Hooks.OnFault != nil {
		// step only ever returns bare *Fault errors (besides ErrStepLimit
		// from Run), so a type assertion keeps this off the reflection
		// path errors.As would take — Step is the emulator's hot loop.
		if f, ok := err.(*Fault); ok {
			c.Hooks.OnFault(f)
		}
	}
	return cost, err
}

func (c *CPU) step() (int, error) {
	pc := c.R[isa.PC]
	hw, err := c.fetch16(pc)
	if err != nil {
		return 0, err
	}
	var hw2 uint16
	if isa.Is32Bit(hw) {
		hw2, err = c.fetch16(pc + 2)
		if err != nil {
			return 0, err
		}
	}
	if c.ZeroIsInvalid && hw == 0 {
		return 0, &Fault{Kind: FaultInvalidInst, Addr: pc, PC: pc}
	}
	in := isa.Decode(hw, hw2)
	if in.Op == isa.OpInvalid {
		return 0, &Fault{Kind: FaultInvalidInst, Addr: pc, PC: pc}
	}
	if c.Hooks.OnExec != nil {
		c.Hooks.OnExec(pc, in)
	}
	cost, err := c.exec(pc, in)
	if err != nil {
		return 0, err
	}
	c.Steps++
	c.Cycles += uint64(cost)
	return cost, nil
}

// Run executes until PC reaches stop, a fault occurs, or maxSteps
// instructions have retired (returning ErrStepLimit).
func (c *CPU) Run(stop uint32, maxSteps uint64) error {
	stop &^= 1
	for i := uint64(0); i < maxSteps; i++ {
		if c.R[isa.PC] == stop {
			return nil
		}
		if _, err := c.Step(); err != nil {
			return err
		}
	}
	if c.R[isa.PC] == stop {
		return nil
	}
	return ErrStepLimit
}

func (c *CPU) setNZ(v uint32) {
	c.Flags.N = v&0x80000000 != 0
	c.Flags.Z = v == 0
}

// addWithCarry implements the ARM AddWithCarry pseudocode, returning the
// result and updating all four flags.
func (c *CPU) addWithCarry(x, y uint32, carry bool) uint32 {
	ci := uint64(0)
	if carry {
		ci = 1
	}
	usum := uint64(x) + uint64(y) + ci
	ssum := int64(int32(x)) + int64(int32(y)) + int64(ci)
	result := uint32(usum)
	c.Flags.C = usum > 0xFFFFFFFF
	c.Flags.V = ssum != int64(int32(result))
	c.setNZ(result)
	return result
}

func (c *CPU) load(pc, addr, size uint32, signExt bool) (uint32, error) {
	if addr%size != 0 {
		return 0, &Fault{Kind: FaultUnaligned, Addr: addr, PC: pc}
	}
	v, _, ok := c.Mem.load(addr, size)
	if !ok {
		return 0, &Fault{Kind: FaultBadRead, Addr: addr, PC: pc}
	}
	if c.Hooks.LoadOverride != nil {
		v = c.Hooks.LoadOverride(addr, size, v)
		if size < 4 {
			v &= 1<<(8*size) - 1 // overrides cannot widen the access
		}
	}
	if signExt {
		shift := 32 - 8*size
		v = uint32(int32(v<<shift) >> shift)
	}
	return v, nil
}

func (c *CPU) store(pc, addr, size, val uint32) error {
	if addr%size != 0 {
		return &Fault{Kind: FaultUnaligned, Addr: addr, PC: pc}
	}
	if _, ok := c.Mem.store(addr, size, val); !ok {
		return &Fault{Kind: FaultBadWrite, Addr: addr, PC: pc}
	}
	if c.Hooks.OnStore != nil {
		c.Hooks.OnStore(addr, size, val)
	}
	return nil
}

// reg reads a register with architectural PC semantics (PC reads as the
// instruction address plus 4).
func (c *CPU) reg(pc uint32, r isa.Reg) uint32 {
	if r == isa.PC {
		return pc + 4
	}
	return c.R[r]
}

func bitCount(regs uint16) uint32 {
	n := uint32(0)
	for regs != 0 {
		n += uint32(regs & 1)
		regs >>= 1
	}
	return n
}
