package emu

import (
	"errors"
	"testing"

	"glitchlab/internal/isa"
)

const (
	testFlashBase = 0x0000_0000
	testRAMBase   = 0x2000_0000
	testRAMSize   = 0x4000
	testStackTop  = testRAMBase + testRAMSize
)

// buildCPU assembles src at the flash base and returns a CPU reset to run
// it, plus the program (for symbol lookup).
func buildCPU(t *testing.T, src string) (*CPU, *isa.Program) {
	t.Helper()
	p, err := isa.Assemble(testFlashBase, src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := NewMemory()
	if _, err := mem.Map("flash", testFlashBase, 0x10000, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Map("ram", testRAMBase, testRAMSize, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := mem.Write(testFlashBase, p.Code); err != nil {
		t.Fatal(err)
	}
	c := New(mem)
	c.Reset(testStackTop, testFlashBase)
	return c, p
}

// runTo runs the CPU to the label "end", failing the test on any fault.
func runTo(t *testing.T, c *CPU, p *isa.Program) {
	t.Helper()
	end, ok := p.SymbolAddr("end")
	if !ok {
		t.Fatal("program has no end label")
	}
	if err := c.Run(end, 10000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestArithmeticFlags(t *testing.T) {
	tests := []struct {
		name  string
		src   string
		reg   isa.Reg
		want  uint32
		flags isa.Flags
	}{
		{
			"add simple",
			"movs r0, #2\n movs r1, #3\n adds r0, r0, r1\n end: nop",
			isa.R0, 5, isa.Flags{},
		},
		{
			"add carry out",
			// 0xFFFFFFFF + 1 = 0 with carry.
			"movs r0, #0\n mvns r0, r0\n movs r1, #1\n adds r0, r0, r1\n end: nop",
			isa.R0, 0, isa.Flags{Z: true, C: true},
		},
		{
			"add signed overflow",
			// 0x7FFFFFFF + 1 overflows to 0x80000000.
			"movs r0, #1\n lsls r0, r0, #31\n subs r0, #1\n movs r1, #1\n adds r0, r0, r1\n end: nop",
			isa.R0, 0x80000000, isa.Flags{N: true, V: true},
		},
		{
			"sub borrow",
			// 0 - 1 = 0xFFFFFFFF, C clear (borrow).
			"movs r0, #0\n movs r1, #1\n subs r0, r0, r1\n end: nop",
			isa.R0, 0xFFFFFFFF, isa.Flags{N: true},
		},
		{
			"sub no borrow",
			"movs r0, #5\n movs r1, #1\n subs r0, r0, r1\n end: nop",
			isa.R0, 4, isa.Flags{C: true},
		},
		{
			"cmp equal sets Z and C",
			"movs r0, #7\n cmp r0, #7\n end: nop",
			isa.R0, 7, isa.Flags{Z: true, C: true},
		},
		{
			"neg",
			"movs r0, #1\n negs r0, r0\n end: nop",
			isa.R0, 0xFFFFFFFF, isa.Flags{N: true},
		},
		{
			"mul",
			"movs r0, #6\n movs r1, #7\n muls r0, r1\n end: nop",
			isa.R0, 42, isa.Flags{},
		},
		{
			"lsl carry",
			"movs r0, #0x80\n lsls r0, r0, #25\n end: nop",
			isa.R0, 0, isa.Flags{Z: true, C: true},
		},
		{
			"lsr to zero",
			"movs r0, #1\n lsrs r0, r0, #1\n end: nop",
			isa.R0, 0, isa.Flags{Z: true, C: true},
		},
		{
			"asr sign fill",
			"movs r0, #1\n lsls r0, r0, #31\n asrs r0, r0, #31\n end: nop",
			isa.R0, 0xFFFFFFFF, isa.Flags{N: true},
		},
		{
			"logic ops",
			"movs r0, #0xf0\n movs r1, #0x3c\n ands r0, r1\n end: nop",
			isa.R0, 0x30, isa.Flags{},
		},
		{
			"adc uses carry",
			// Set carry via cmp, then 1 + 1 + C = 3.
			"movs r0, #1\n cmp r0, #0\n movs r1, #1\n adcs r0, r1\n end: nop",
			isa.R0, 3, isa.Flags{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, p := buildCPU(t, tt.src)
			runTo(t, c, p)
			if c.R[tt.reg] != tt.want {
				t.Errorf("reg = %#x, want %#x", c.R[tt.reg], tt.want)
			}
			if c.Flags != tt.flags {
				t.Errorf("flags = %v, want %v", c.Flags, tt.flags)
			}
		})
	}
}

func TestConditionalBranchTaken(t *testing.T) {
	// Each condition, set up to be true, must branch over the r6 marker.
	setups := map[isa.Cond]string{
		isa.EQ: "movs r0, #0\n cmp r0, #0",
		isa.NE: "movs r0, #1\n cmp r0, #0",
		isa.CS: "movs r0, #1\n cmp r0, #0",
		isa.CC: "movs r0, #0\n cmp r0, #1",
		isa.MI: "movs r0, #0\n cmp r0, #1",
		isa.PL: "movs r0, #1\n cmp r0, #0",
		isa.VS: "movs r0, #1\n lsls r0, r0, #31\n cmp r0, #1",
		isa.VC: "movs r0, #0\n cmp r0, #0",
		isa.HI: "movs r0, #2\n cmp r0, #1",
		isa.LS: "movs r0, #0\n cmp r0, #0",
		isa.GE: "movs r0, #1\n cmp r0, #0",
		isa.LT: "movs r0, #0\n cmp r0, #1",
		isa.GT: "movs r0, #2\n cmp r0, #1",
		isa.LE: "movs r0, #0\n cmp r0, #0",
	}
	for _, cond := range isa.BranchConds() {
		setup, ok := setups[cond]
		if !ok {
			t.Fatalf("no setup for %v", cond)
		}
		src := setup + "\n b" + cond.String() + " taken\n movs r6, #1\n taken: end: nop"
		c, p := buildCPU(t, src)
		runTo(t, c, p)
		if c.R[isa.R6] != 0 {
			t.Errorf("b%s not taken: r6 = %#x", cond, c.R[isa.R6])
		}
	}
}

func TestLoadStore(t *testing.T) {
	c, p := buildCPU(t, `
		ldr r0, =0x20000000
		ldr r1, =0x12345678
		str r1, [r0]
		ldr r2, [r0]
		ldrb r3, [r0]       ; 0x78
		ldrh r4, [r0, #2]   ; 0x1234
		movs r5, #0xff
		strb r5, [r0, #1]
		ldr r6, [r0]        ; 0x1234ff78
		end: nop
	`)
	runTo(t, c, p)
	if c.R[isa.R2] != 0x12345678 {
		t.Errorf("word load = %#x", c.R[isa.R2])
	}
	if c.R[isa.R3] != 0x78 {
		t.Errorf("byte load = %#x", c.R[isa.R3])
	}
	if c.R[isa.R4] != 0x1234 {
		t.Errorf("half load = %#x", c.R[isa.R4])
	}
	if c.R[isa.R6] != 0x1234ff78 {
		t.Errorf("after byte store = %#x", c.R[isa.R6])
	}
}

func TestSignExtendingLoads(t *testing.T) {
	c, p := buildCPU(t, `
		ldr r0, =0x20000000
		ldr r1, =0x8081
		strh r1, [r0]
		movs r2, #0
		ldrsb r3, [r0, r2]
		ldrsh r4, [r0, r2]
		end: nop
	`)
	runTo(t, c, p)
	if c.R[isa.R3] != 0xFFFFFF81 {
		t.Errorf("ldrsb = %#x, want 0xFFFFFF81", c.R[isa.R3])
	}
	if c.R[isa.R4] != 0xFFFF8081 {
		t.Errorf("ldrsh = %#x, want 0xFFFF8081", c.R[isa.R4])
	}
}

func TestPushPopCall(t *testing.T) {
	c, p := buildCPU(t, `
		movs r4, #11
		movs r5, #22
		push {r4, r5}
		movs r4, #0
		movs r5, #0
		pop {r4, r5}
		bl func
		movs r2, #1
		end: nop
	func:
		movs r1, #33
		bx lr
	`)
	runTo(t, c, p)
	if c.R[isa.R4] != 11 || c.R[isa.R5] != 22 {
		t.Errorf("pop restored r4=%d r5=%d", c.R[isa.R4], c.R[isa.R5])
	}
	if c.R[isa.R1] != 33 || c.R[isa.R2] != 1 {
		t.Errorf("call sequence r1=%d r2=%d", c.R[isa.R1], c.R[isa.R2])
	}
	if c.R[isa.SP] != testStackTop {
		t.Errorf("sp = %#x, want %#x", c.R[isa.SP], uint32(testStackTop))
	}
}

func TestPopPC(t *testing.T) {
	c, p := buildCPU(t, `
		bl func
		end: nop
	func:
		push {r4, lr}
		movs r4, #9
		pop {r4, pc}
	`)
	runTo(t, c, p)
	// r4 is restored to its pre-call value (0), and control returned.
	if c.R[isa.R4] != 0 {
		t.Errorf("r4 = %d, want 0", c.R[isa.R4])
	}
}

func TestFaults(t *testing.T) {
	tests := []struct {
		name string
		src  string
		kind FaultKind
	}{
		{"bad read", "ldr r0, =0x90000000\n ldr r1, [r0]\n end: nop", FaultBadRead},
		{"bad write", "ldr r0, =0x90000000\n str r1, [r0]\n end: nop", FaultBadWrite},
		{"unaligned", "ldr r0, =0x20000002\n ldr r1, [r0]\n end: nop", FaultUnaligned},
		{"udf", "udf 0\n end: nop", FaultUndefined},
		{"bkpt", "bkpt 0\n end: nop", FaultBreakpoint},
		{"svc", "svc 0\n end: nop", FaultSupervisor},
		{"bad fetch", "ldr r0, =0x90000001\n mov pc, r0\n end: nop", FaultBadFetch},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, p := buildCPU(t, tt.src)
			end, _ := p.SymbolAddr("end")
			err := c.Run(end, 1000)
			var fault *Fault
			if !errors.As(err, &fault) {
				t.Fatalf("err = %v, want fault", err)
			}
			if fault.Kind != tt.kind {
				t.Errorf("fault = %v, want %v", fault.Kind, tt.kind)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	c, p := buildCPU(t, "loop: b loop\n end: nop")
	end, _ := p.SymbolAddr("end")
	if err := c.Run(end, 100); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestZeroIsInvalid(t *testing.T) {
	// The all-zero halfword normally executes as movs r0, r0.
	c, p := buildCPU(t, ".hword 0\n end: nop")
	end, _ := p.SymbolAddr("end")
	if err := c.Run(end, 10); err != nil {
		t.Fatalf("zero word faulted without ZeroIsInvalid: %v", err)
	}
	c, p = buildCPU(t, ".hword 0\n end: nop")
	c.ZeroIsInvalid = true
	end, _ = p.SymbolAddr("end")
	err := c.Run(end, 10)
	var fault *Fault
	if !errors.As(err, &fault) || fault.Kind != FaultInvalidInst {
		t.Fatalf("err = %v, want invalid instruction", err)
	}
}

func TestCycleCosts(t *testing.T) {
	// Per M0 costs: movs(1) + ldr(2) + str(2) + b(3) + nop at end.
	c, p := buildCPU(t, `
		movs r0, #1
		ldr r1, =0x20000000
		str r0, [r1]
		b end
		end: nop
	`)
	runTo(t, c, p)
	if c.Cycles != 1+2+2+3 {
		t.Errorf("cycles = %d, want 8", c.Cycles)
	}
	if c.Steps != 4 {
		t.Errorf("steps = %d, want 4", c.Steps)
	}
}

func TestBranchNotTakenCost(t *testing.T) {
	c, p := buildCPU(t, `
		movs r0, #1
		cmp r0, #0
		beq never
		end: nop
	never:
		nop
	`)
	runTo(t, c, p)
	if c.Cycles != 1+1+1 {
		t.Errorf("cycles = %d, want 3 (untaken branch costs 1)", c.Cycles)
	}
}

func TestHooks(t *testing.T) {
	var fetched, stored, execed int
	c, p := buildCPU(t, `
		movs r0, #1
		ldr r1, =0x20000000
		str r0, [r1]
		end: nop
	`)
	c.Hooks.FetchOverride = func(addr uint32, hw uint16) uint16 {
		fetched++
		return hw
	}
	c.Hooks.OnStore = func(addr, size, val uint32) {
		stored++
		if addr != 0x20000000 || val != 1 {
			t.Errorf("store addr=%#x val=%d", addr, val)
		}
	}
	c.Hooks.OnExec = func(addr uint32, in isa.Inst) { execed++ }
	runTo(t, c, p)
	if fetched == 0 || stored != 1 || execed != 3 {
		t.Errorf("fetched=%d stored=%d execed=%d", fetched, stored, execed)
	}
}

func TestFetchOverrideCorruption(t *testing.T) {
	// Corrupt the cmp so the branch falls through: turn `cmp r0, #0`
	// (0x2800) into all-zeros (movs r0, r0) so Z stays clear and beq is
	// not taken.
	c, p := buildCPU(t, `
		movs r0, #1
		cmp r0, #0
		bne skip        ; normally taken since r0 != 0
		movs r6, #1
	skip:
		end: nop
	`)
	cmpAddr := p.InstAddrs[1]
	c.Hooks.FetchOverride = func(addr uint32, hw uint16) uint16 {
		if addr == cmpAddr {
			return 0x2800 & 0 // AND-glitch everything to zero
		}
		return hw
	}
	runTo(t, c, p)
	// With cmp corrupted, flags come from movs r0, #1 (Z clear) so bne is
	// still taken — r6 stays 0. This pins down that corruption is
	// transient and semantics flow through the real executor.
	if c.R[isa.R6] != 0 {
		t.Errorf("r6 = %d", c.R[isa.R6])
	}
	// Now corrupt the branch itself into a nop-equivalent.
	c2, p2 := buildCPU(t, `
		movs r0, #1
		cmp r0, #0
		bne skip
		movs r6, #1
	skip:
		end: nop
	`)
	bneAddr := p2.InstAddrs[2]
	c2.Hooks.FetchOverride = func(addr uint32, hw uint16) uint16 {
		if addr == bneAddr {
			return 0
		}
		return hw
	}
	runTo(t, c2, p2)
	if c2.R[isa.R6] != 1 {
		t.Errorf("skipped branch: r6 = %d, want 1", c2.R[isa.R6])
	}
}

func TestMemoryMapErrors(t *testing.T) {
	m := NewMemory()
	if _, err := m.Map("a", 0, 0x100, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("b", 0x80, 0x100, PermRead); err == nil {
		t.Error("overlapping map succeeded")
	}
	if _, err := m.Map("z", 0x1000, 0, PermRead); err == nil {
		t.Error("zero-size map succeeded")
	}
	if err := m.Write(0x5000, []byte{1}); err == nil {
		t.Error("write outside regions succeeded")
	}
}
