// Package emu implements an ARMv6-M Thumb CPU emulator: a region-based
// memory map, an execute loop with the full flag semantics of the Thumb-16
// subset, and the fault taxonomy the paper's emulation campaign classifies
// results into (bad read, bad fetch, invalid instruction).
package emu

import (
	"fmt"
	"sort"
)

// Perm is a memory-region permission bitmask.
type Perm uint8

// Region permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Region is a contiguous mapped memory range.
type Region struct {
	Name string
	Base uint32
	Data []byte
	Perm Perm

	// dirty, when non-nil, is the armed dirty-page bitmap (one bit per
	// 256-byte page, see snapPageShift): Memory.store marks the pages it
	// touches so MemSnapshot.Restore can copy back only what changed.
	dirty []uint64
}

func (r *Region) contains(addr uint32, size uint32) bool {
	n := uint32(len(r.Data))
	return addr >= r.Base && size <= n && addr-r.Base <= n-size
}

// Memory is a sparse, region-based memory map.
type Memory struct {
	regions []*Region
}

// NewMemory returns an empty memory map.
func NewMemory() *Memory {
	return &Memory{}
}

// Map adds a region. Overlapping regions are rejected.
func (m *Memory) Map(name string, base uint32, size uint32, perm Perm) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("emu: region %q has zero size", name)
	}
	for _, r := range m.regions {
		if base < r.Base+uint32(len(r.Data)) && r.Base < base+size {
			return nil, fmt.Errorf("emu: region %q overlaps %q", name, r.Name)
		}
	}
	reg := &Region{Name: name, Base: base, Data: make([]byte, size), Perm: perm}
	m.regions = append(m.regions, reg)
	sort.Slice(m.regions, func(i, j int) bool {
		return m.regions[i].Base < m.regions[j].Base
	})
	return reg, nil
}

// Write copies data into mapped memory (for loading programs); it bypasses
// permission checks.
func (m *Memory) Write(addr uint32, data []byte) error {
	for _, r := range m.regions {
		if r.contains(addr, uint32(len(data))) {
			copy(r.Data[addr-r.Base:], data)
			return nil
		}
	}
	return fmt.Errorf("emu: write of %d bytes at %#x outside mapped memory",
		len(data), addr)
}

// Region returns the region containing [addr, addr+size).
func (m *Memory) Region(addr, size uint32) (*Region, bool) {
	for _, r := range m.regions {
		if r.contains(addr, size) {
			return r, true
		}
	}
	return nil, false
}

func (m *Memory) load(addr, size uint32) (uint32, *Region, bool) {
	r, ok := m.Region(addr, size)
	if !ok || r.Perm&PermRead == 0 {
		return 0, nil, false
	}
	off := addr - r.Base
	var v uint32
	for i := uint32(0); i < size; i++ {
		v |= uint32(r.Data[off+i]) << (8 * i)
	}
	return v, r, true
}

func (m *Memory) store(addr, size, val uint32) (*Region, bool) {
	r, ok := m.Region(addr, size)
	if !ok || r.Perm&PermWrite == 0 {
		return nil, false
	}
	off := addr - r.Base
	for i := uint32(0); i < size; i++ {
		r.Data[off+i] = byte(val >> (8 * i))
	}
	if r.dirty != nil {
		p := off >> snapPageShift
		r.dirty[p>>6] |= 1 << (p & 63)
		if p2 := (off + size - 1) >> snapPageShift; p2 != p {
			r.dirty[p2>>6] |= 1 << (p2 & 63)
		}
	}
	return r, true
}

// ReadWord reads a 32-bit little-endian word, bypassing permissions (used by
// post-mortem inspection).
func (m *Memory) ReadWord(addr uint32) (uint32, bool) {
	v, _, ok := m.load(addr, 4)
	return v, ok
}
