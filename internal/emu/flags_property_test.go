package emu

import (
	"testing"
	"testing/quick"

	"glitchlab/internal/isa"
)

// TestAddWithCarryOracle property-checks the ALU's core against a wide
// 64-bit arithmetic oracle: result, carry and overflow must match for all
// operand/carry combinations.
func TestAddWithCarryOracle(t *testing.T) {
	cpu := New(NewMemory())
	f := func(x, y uint32, carry bool) bool {
		got := cpu.addWithCarry(x, y, carry)
		ci := uint64(0)
		if carry {
			ci = 1
		}
		wide := uint64(x) + uint64(y) + ci
		if got != uint32(wide) {
			return false
		}
		if cpu.Flags.C != (wide > 0xFFFFFFFF) {
			return false
		}
		signed := int64(int32(x)) + int64(int32(y)) + int64(ci)
		if cpu.Flags.V != (signed != int64(int32(wide))) {
			return false
		}
		if cpu.Flags.Z != (uint32(wide) == 0) {
			return false
		}
		return cpu.Flags.N == (int32(wide) < 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestSubtractionIdentity property-checks that CMP/SUBS semantics (x + ^y
// + 1) implement true subtraction with ARM's inverted-borrow carry.
func TestSubtractionIdentity(t *testing.T) {
	cpu := New(NewMemory())
	f := func(x, y uint32) bool {
		got := cpu.addWithCarry(x, ^y, true)
		if got != x-y {
			return false
		}
		// ARM carry after subtraction: set iff no borrow (x >= y).
		return cpu.Flags.C == (x >= y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestConditionConsistency cross-checks every condition code against the
// comparison it encodes, via real CMP executions.
func TestConditionConsistency(t *testing.T) {
	cpu := New(NewMemory())
	f := func(x, y uint32) bool {
		cpu.addWithCarry(x, ^y, true) // flags of CMP x, y
		fl := cpu.Flags
		checks := []struct {
			cond isa.Cond
			want bool
		}{
			{isa.EQ, x == y},
			{isa.NE, x != y},
			{isa.CS, x >= y},
			{isa.CC, x < y},
			{isa.HI, x > y},
			{isa.LS, x <= y},
			{isa.GE, int32(x) >= int32(y)},
			{isa.LT, int32(x) < int32(y)},
			{isa.GT, int32(x) > int32(y)},
			{isa.LE, int32(x) <= int32(y)},
		}
		for _, c := range checks {
			if c.cond.Holds(fl) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
