package emu

import (
	"testing"

	"glitchlab/internal/isa"
)

func TestExtendAndReverseOps(t *testing.T) {
	c, p := buildCPU(t, `
		ldr r0, =0x80818283
		sxtb r1, r0        ; 0xFFFFFF83
		sxth r2, r0        ; 0xFFFF8283
		uxtb r3, r0        ; 0x83
		uxth r4, r0        ; 0x8283
		rev r5, r0         ; 0x83828180
		rev16 r6, r0       ; 0x81808382
		ldr r0, =0x0000811A
		revsh r7, r0       ; bytes of low half swapped, sign-extended
		end: nop
	`)
	runTo(t, c, p)
	want := map[isa.Reg]uint32{
		isa.R1: 0xFFFFFF83,
		isa.R2: 0xFFFF8283,
		isa.R3: 0x83,
		isa.R4: 0x8283,
		isa.R5: 0x83828180,
		isa.R6: 0x81808382,
		isa.R7: 0x1A81,
	}
	for r, w := range want {
		if c.R[r] != w {
			t.Errorf("%v = %#x, want %#x", r, c.R[r], w)
		}
	}
}

func TestRegisterShifts(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint32
		c    bool
	}{
		{"lsl reg", "movs r0, #1\n movs r1, #4\n lsls r0, r1\n end: nop", 16, false},
		{"lsl by 32", "movs r0, #1\n movs r1, #32\n lsls r0, r1\n end: nop", 0, true},
		{"lsl by 33", "movs r0, #1\n movs r1, #33\n lsls r0, r1\n end: nop", 0, false},
		{"lsr reg", "movs r0, #16\n movs r1, #4\n lsrs r0, r1\n end: nop", 1, false},
		{"lsr by 32", "ldr r0, =0x80000000\n movs r1, #32\n lsrs r0, r1\n end: nop", 0, true},
		{"asr big", "ldr r0, =0x80000000\n movs r1, #40\n asrs r0, r1\n end: nop", 0xFFFFFFFF, true},
		{"ror", "ldr r0, =0x80000001\n movs r1, #1\n rors r0, r1\n end: nop", 0xC0000000, true},
		{"ror by zero keeps", "ldr r0, =0x80000001\n movs r1, #0\n rors r0, r1\n end: nop", 0x80000001, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, p := buildCPU(t, tt.src)
			runTo(t, c, p)
			if c.R[isa.R0] != tt.want {
				t.Errorf("r0 = %#x, want %#x", c.R[isa.R0], tt.want)
			}
			if c.Flags.C != tt.c {
				t.Errorf("C = %v, want %v", c.Flags.C, tt.c)
			}
		})
	}
}

func TestCarryChainAdcSbc(t *testing.T) {
	// 64-bit add via adds/adcs: 0xFFFFFFFF_00000001 + 0x00000001_FFFFFFFF.
	c, p := buildCPU(t, `
		movs r0, #1           ; lo a
		movs r1, #0           ; hi a placeholder
		mvns r1, r1           ; hi a = 0xFFFFFFFF
		movs r2, #0
		mvns r2, r2           ; lo b = 0xFFFFFFFF
		movs r3, #1           ; hi b
		adds r0, r0, r2       ; lo sum, carry out
		adcs r1, r3           ; hi sum with carry
		end: nop
	`)
	runTo(t, c, p)
	if c.R[isa.R0] != 0 {
		t.Errorf("lo = %#x, want 0", c.R[isa.R0])
	}
	if c.R[isa.R1] != 1 { // 0xFFFFFFFF + 1 + carry = 1 (mod 2^32), carry out
		t.Errorf("hi = %#x, want 1", c.R[isa.R1])
	}
	if !c.Flags.C {
		t.Error("carry should be set")
	}

	// 64-bit subtract via subs/sbcs: (2<<32 | 0) - (0<<32 | 1).
	c2, p2 := buildCPU(t, `
		movs r0, #0           ; lo a
		movs r1, #2           ; hi a
		movs r2, #1           ; lo b
		movs r3, #0           ; hi b
		subs r0, r0, r2
		sbcs r1, r3
		end: nop
	`)
	runTo(t, c2, p2)
	if c2.R[isa.R0] != 0xFFFFFFFF || c2.R[isa.R1] != 1 {
		t.Errorf("64-bit sub = %#x:%#x, want 1:0xFFFFFFFF",
			c2.R[isa.R1], c2.R[isa.R0])
	}
}

func TestStmLdm(t *testing.T) {
	c, p := buildCPU(t, `
		ldr r0, =0x20000100
		movs r1, #11
		movs r2, #22
		movs r3, #33
		stmia r0!, {r1, r2, r3}
		movs r1, #0
		movs r2, #0
		movs r3, #0
		ldr r0, =0x20000100
		ldmia r0!, {r1, r2, r3}
		end: nop
	`)
	runTo(t, c, p)
	if c.R[isa.R1] != 11 || c.R[isa.R2] != 22 || c.R[isa.R3] != 33 {
		t.Errorf("ldm restored %d %d %d", c.R[isa.R1], c.R[isa.R2], c.R[isa.R3])
	}
	if c.R[isa.R0] != 0x20000100+12 {
		t.Errorf("writeback r0 = %#x", c.R[isa.R0])
	}
}

func TestLdmBaseInList(t *testing.T) {
	// When the base register is in the list, no writeback occurs and the
	// loaded value wins.
	c, p := buildCPU(t, `
		ldr r0, =0x20000200
		ldr r1, =0xCAFEBABE
		str r1, [r0]
		ldmia r0!, {r0}
		end: nop
	`)
	runTo(t, c, p)
	if c.R[isa.R0] != 0xCAFEBABE {
		t.Errorf("r0 = %#x, want loaded value", c.R[isa.R0])
	}
}

func TestHiRegisterOps(t *testing.T) {
	c, p := buildCPU(t, `
		movs r0, #5
		mov r8, r0
		movs r0, #3
		add r0, r8        ; 3 + 5, no flags
		mov r9, sp
		cmp r8, r0        ; 5 vs 8: borrow
		end: nop
	`)
	runTo(t, c, p)
	if c.R[isa.R0] != 8 {
		t.Errorf("r0 = %d, want 8", c.R[isa.R0])
	}
	if c.R[isa.R9] != testStackTop {
		t.Errorf("r9 = %#x, want sp", c.R[isa.R9])
	}
	if c.Flags.C { // 5 - 8 borrows => C clear
		t.Error("carry should be clear after cmp r8, r0")
	}
}

func TestAdrAndAddSp(t *testing.T) {
	c, p := buildCPU(t, `
		adr r0, data
		ldr r1, [r0]
		add r2, sp, #8
		sub sp, #8
		add r3, sp, #0
		add sp, #8
		end: nop
		.align 4
	data:
		.word 0x11223344
	`)
	runTo(t, c, p)
	if c.R[isa.R1] != 0x11223344 {
		t.Errorf("adr+ldr = %#x", c.R[isa.R1])
	}
	if c.R[isa.R2] != testStackTop+8 {
		t.Errorf("add r2, sp = %#x", c.R[isa.R2])
	}
	if c.R[isa.R3] != testStackTop-8 {
		t.Errorf("sp after sub = %#x", c.R[isa.R3])
	}
	if c.R[isa.SP] != testStackTop {
		t.Errorf("sp not restored: %#x", c.R[isa.SP])
	}
}

func TestBLXAndMovPC(t *testing.T) {
	c2, p2 := buildCPU(t, `
		adr r4, helper
		adds r4, #1        ; set thumb bit
		blx r4
		movs r2, #2
		b end
		.align 4
	helper:
		movs r1, #1
		bx lr
		end: nop
	`)
	runTo(t, c2, p2)
	if c2.R[isa.R1] != 1 || c2.R[isa.R2] != 2 {
		t.Errorf("blx sequence r1=%d r2=%d", c2.R[isa.R1], c2.R[isa.R2])
	}

}

func TestWideCycleCounts(t *testing.T) {
	// push {r4,r5} = 1+2, pop = 1+2; bl = 4; bx = 3.
	c, p := buildCPU(t, `
		push {r4, r5}
		pop {r4, r5}
		bl f
		end: nop
	f:
		bx lr
	`)
	runTo(t, c, p)
	if want := uint64(3 + 3 + 4 + 3); c.Cycles != want {
		t.Errorf("cycles = %d, want %d", c.Cycles, want)
	}
}

func TestCostOfMatchesExecution(t *testing.T) {
	// CostOf's prediction must equal the cycles the instruction actually
	// takes, for a spread of instruction shapes.
	c, p := buildCPU(t, `
		movs r0, #1
		cmp r0, #1
		beq skip
		nop
	skip:
		ldr r1, =0x20000000
		str r0, [r1]
		ldr r2, [r1]
		push {r0, r1}
		pop {r0, r1}
		b fin
	fin:
		end: nop
	`)
	end, _ := p.SymbolAddr("end")
	for c.PC() != end {
		pc := c.PC()
		r, ok := c.Mem.Region(pc, 2)
		if !ok {
			t.Fatal("bad pc")
		}
		off := pc - r.Base
		hw := uint16(r.Data[off]) | uint16(r.Data[off+1])<<8
		in := isa.Decode(hw, 0)
		predicted := c.CostOf(in)
		got, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if got != predicted {
			t.Errorf("%v at %#x: predicted %d cycles, took %d", in, pc, predicted, got)
		}
	}
}
