package emu

import (
	"glitchlab/internal/isa"
)

// Cycle costs follow the Cortex-M0: most instructions take 1 cycle, data
// accesses 2, taken branches 3, BL 4 (plus 1 per transferred register for
// the multi-register forms).
const (
	cycleALU         = 1
	cycleMem         = 2
	cycleBranchTaken = 3
	cycleBL          = 4
)

// CostOf predicts the cycle cost of executing in with the CPU's current
// flags (conditional-branch cost depends on whether the branch will be
// taken). The pipeline model uses this to map clock cycles to pipeline
// stages before an instruction executes.
func (c *CPU) CostOf(in isa.Inst) int {
	switch in.Op {
	case isa.OpBCond:
		if in.Cond.Holds(c.Flags) {
			return cycleBranchTaken
		}
		return cycleALU
	case isa.OpB, isa.OpBX, isa.OpBLX:
		return cycleBranchTaken
	case isa.OpBL:
		return cycleBL
	case isa.OpADDHi, isa.OpMOVHi:
		if in.Rd == isa.PC {
			return cycleBranchTaken
		}
		return cycleALU
	case isa.OpPUSH, isa.OpSTM:
		return int(1 + bitCount(in.Regs))
	case isa.OpPOP:
		n := int(1 + bitCount(in.Regs))
		if in.Regs&(1<<8) != 0 {
			n += 2
		}
		return n
	case isa.OpLDM:
		return int(1 + bitCount(in.Regs))
	default:
		if in.Op.IsLoad() || in.Op.IsStore() {
			return cycleMem
		}
		return cycleALU
	}
}

// exec executes a decoded instruction at pc and returns its cycle cost.
// It updates PC itself (advance or branch).
func (c *CPU) exec(pc uint32, in isa.Inst) (int, error) {
	next := pc + uint32(in.Size)
	cost := cycleALU
	branchTo := func(target uint32) {
		c.R[isa.PC] = target &^ 1
	}

	switch in.Op {
	case isa.OpLSLImm:
		v := c.reg(pc, in.Rm)
		if in.Imm != 0 {
			c.Flags.C = v&(1<<(32-in.Imm)) != 0
			v <<= in.Imm
		}
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpLSRImm:
		v := c.reg(pc, in.Rm)
		n := in.Imm
		if n == 0 {
			n = 32
		}
		if n == 32 {
			c.Flags.C = v&0x80000000 != 0
			v = 0
		} else {
			c.Flags.C = v&(1<<(n-1)) != 0
			v >>= n
		}
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpASRImm:
		v := c.reg(pc, in.Rm)
		n := in.Imm
		if n == 0 {
			n = 32
		}
		if n == 32 {
			c.Flags.C = v&0x80000000 != 0
			v = uint32(int32(v) >> 31)
		} else {
			c.Flags.C = v&(1<<(n-1)) != 0
			v = uint32(int32(v) >> n)
		}
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpADDReg:
		c.R[in.Rd] = c.addWithCarry(c.reg(pc, in.Rn), c.reg(pc, in.Rm), false)
	case isa.OpSUBReg:
		c.R[in.Rd] = c.addWithCarry(c.reg(pc, in.Rn), ^c.reg(pc, in.Rm), true)
	case isa.OpADDImm3:
		c.R[in.Rd] = c.addWithCarry(c.reg(pc, in.Rn), in.Imm, false)
	case isa.OpSUBImm3:
		c.R[in.Rd] = c.addWithCarry(c.reg(pc, in.Rn), ^in.Imm, true)
	case isa.OpMOVImm:
		c.R[in.Rd] = in.Imm
		c.setNZ(in.Imm)
	case isa.OpCMPImm:
		c.addWithCarry(c.reg(pc, in.Rn), ^in.Imm, true)
	case isa.OpADDImm8:
		c.R[in.Rd] = c.addWithCarry(c.R[in.Rd], in.Imm, false)
	case isa.OpSUBImm8:
		c.R[in.Rd] = c.addWithCarry(c.R[in.Rd], ^in.Imm, true)

	case isa.OpAND:
		v := c.R[in.Rd] & c.reg(pc, in.Rm)
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpEOR:
		v := c.R[in.Rd] ^ c.reg(pc, in.Rm)
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpLSLReg, isa.OpLSRReg, isa.OpASRReg, isa.OpRORReg:
		c.R[in.Rd] = c.shiftReg(in.Op, c.R[in.Rd], c.reg(pc, in.Rm))
	case isa.OpADC:
		c.R[in.Rd] = c.addWithCarry(c.R[in.Rd], c.reg(pc, in.Rm), c.Flags.C)
	case isa.OpSBC:
		c.R[in.Rd] = c.addWithCarry(c.R[in.Rd], ^c.reg(pc, in.Rm), c.Flags.C)
	case isa.OpTST:
		c.setNZ(c.reg(pc, in.Rn) & c.reg(pc, in.Rm))
	case isa.OpRSB:
		c.R[in.Rd] = c.addWithCarry(^c.reg(pc, in.Rn), 0, true)
	case isa.OpCMPReg, isa.OpCMPHi:
		c.addWithCarry(c.reg(pc, in.Rn), ^c.reg(pc, in.Rm), true)
	case isa.OpCMN:
		c.addWithCarry(c.reg(pc, in.Rn), c.reg(pc, in.Rm), false)
	case isa.OpORR:
		v := c.R[in.Rd] | c.reg(pc, in.Rm)
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpMUL:
		v := c.R[in.Rd] * c.reg(pc, in.Rm)
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpBIC:
		v := c.R[in.Rd] &^ c.reg(pc, in.Rm)
		c.R[in.Rd] = v
		c.setNZ(v)
	case isa.OpMVN:
		v := ^c.reg(pc, in.Rm)
		c.R[in.Rd] = v
		c.setNZ(v)

	case isa.OpADDHi:
		v := c.reg(pc, in.Rn) + c.reg(pc, in.Rm)
		if in.Rd == isa.PC {
			branchTo(v)
			return cycleBranchTaken, nil
		}
		c.R[in.Rd] = v
	case isa.OpMOVHi:
		v := c.reg(pc, in.Rm)
		if in.Rd == isa.PC {
			branchTo(v)
			return cycleBranchTaken, nil
		}
		c.R[in.Rd] = v
	case isa.OpBX:
		branchTo(c.reg(pc, in.Rm))
		return cycleBranchTaken, nil
	case isa.OpBLX:
		target := c.reg(pc, in.Rm)
		c.R[isa.LR] = (pc + 2) | 1
		branchTo(target)
		return cycleBranchTaken, nil

	case isa.OpLDRLit:
		addr := ((pc + 4) &^ 3) + in.Imm
		v, err := c.load(pc, addr, 4, false)
		if err != nil {
			return 0, err
		}
		c.R[in.Rd] = v
		cost = cycleMem
	case isa.OpLDRReg, isa.OpLDRImm, isa.OpLDRSP,
		isa.OpLDRBReg, isa.OpLDRBImm, isa.OpLDRSB,
		isa.OpLDRHReg, isa.OpLDRHImm, isa.OpLDRSH:
		addr, size, sign := c.effAddr(pc, in)
		v, err := c.load(pc, addr, size, sign)
		if err != nil {
			return 0, err
		}
		c.R[in.Rd] = v
		cost = cycleMem
	case isa.OpSTRReg, isa.OpSTRImm, isa.OpSTRSP,
		isa.OpSTRBReg, isa.OpSTRBImm, isa.OpSTRHReg, isa.OpSTRHImm:
		addr, size, _ := c.effAddr(pc, in)
		if err := c.store(pc, addr, size, c.R[in.Rd]); err != nil {
			return 0, err
		}
		cost = cycleMem

	case isa.OpADR:
		c.R[in.Rd] = ((pc + 4) &^ 3) + in.Imm
	case isa.OpADDSP:
		c.R[in.Rd] = c.R[isa.SP] + in.Imm
	case isa.OpADDSPImm:
		c.R[isa.SP] += in.Imm
	case isa.OpSUBSPImm:
		c.R[isa.SP] -= in.Imm

	case isa.OpSXTH:
		c.R[in.Rd] = uint32(int32(int16(c.reg(pc, in.Rm))))
	case isa.OpSXTB:
		c.R[in.Rd] = uint32(int32(int8(c.reg(pc, in.Rm))))
	case isa.OpUXTH:
		c.R[in.Rd] = c.reg(pc, in.Rm) & 0xffff
	case isa.OpUXTB:
		c.R[in.Rd] = c.reg(pc, in.Rm) & 0xff
	case isa.OpREV:
		v := c.reg(pc, in.Rm)
		c.R[in.Rd] = v<<24 | (v&0xff00)<<8 | (v>>8)&0xff00 | v>>24
	case isa.OpREV16:
		v := c.reg(pc, in.Rm)
		c.R[in.Rd] = (v&0xff)<<8 | (v>>8)&0xff | (v&0xff0000)<<8 | (v>>8)&0xff0000
	case isa.OpREVSH:
		v := c.reg(pc, in.Rm)
		c.R[in.Rd] = uint32(int32(int16(v<<8 | (v>>8)&0xff)))

	case isa.OpPUSH:
		n := bitCount(in.Regs)
		addr := c.R[isa.SP] - 4*n
		base := addr
		for r := isa.Reg(0); r < 8; r++ {
			if in.Regs&(1<<r) != 0 {
				if err := c.store(pc, addr, 4, c.R[r]); err != nil {
					return 0, err
				}
				addr += 4
			}
		}
		if in.Regs&(1<<8) != 0 {
			if err := c.store(pc, addr, 4, c.R[isa.LR]); err != nil {
				return 0, err
			}
		}
		c.R[isa.SP] = base
		cost = int(1 + n)
	case isa.OpPOP:
		addr := c.R[isa.SP]
		for r := isa.Reg(0); r < 8; r++ {
			if in.Regs&(1<<r) != 0 {
				v, err := c.load(pc, addr, 4, false)
				if err != nil {
					return 0, err
				}
				c.R[r] = v
				addr += 4
			}
		}
		popPC := in.Regs&(1<<8) != 0
		var target uint32
		if popPC {
			v, err := c.load(pc, addr, 4, false)
			if err != nil {
				return 0, err
			}
			target = v
			addr += 4
		}
		c.R[isa.SP] = addr
		cost = int(1 + bitCount(in.Regs))
		if popPC {
			branchTo(target)
			return cost + 2, nil
		}
	case isa.OpSTM:
		addr := c.R[in.Rn]
		for r := isa.Reg(0); r < 8; r++ {
			if in.Regs&(1<<r) != 0 {
				if err := c.store(pc, addr, 4, c.R[r]); err != nil {
					return 0, err
				}
				addr += 4
			}
		}
		c.R[in.Rn] = addr
		cost = int(1 + bitCount(in.Regs))
	case isa.OpLDM:
		addr := c.R[in.Rn]
		for r := isa.Reg(0); r < 8; r++ {
			if in.Regs&(1<<r) != 0 {
				v, err := c.load(pc, addr, 4, false)
				if err != nil {
					return 0, err
				}
				c.R[r] = v
				addr += 4
			}
		}
		if in.Regs&(1<<in.Rn) == 0 {
			c.R[in.Rn] = addr
		}
		cost = int(1 + bitCount(in.Regs))

	case isa.OpNOP, isa.OpCPS:
		// No effect.

	case isa.OpBCond:
		if in.Cond.Holds(c.Flags) {
			branchTo(in.BranchTarget(pc))
			return cycleBranchTaken, nil
		}
	case isa.OpB:
		branchTo(in.BranchTarget(pc))
		return cycleBranchTaken, nil
	case isa.OpBL:
		c.R[isa.LR] = (pc + 4) | 1
		branchTo(in.BranchTarget(pc))
		return cycleBL, nil

	case isa.OpUDF:
		return 0, &Fault{Kind: FaultUndefined, Addr: pc, PC: pc}
	case isa.OpBKPT:
		return 0, &Fault{Kind: FaultBreakpoint, Addr: pc, PC: pc}
	case isa.OpSVC:
		return 0, &Fault{Kind: FaultSupervisor, Addr: pc, PC: pc}

	default:
		return 0, &Fault{Kind: FaultInvalidInst, Addr: pc, PC: pc}
	}

	c.R[isa.PC] = next
	return cost, nil
}

// effAddr computes the effective address, access size and sign-extension
// flag for a load/store.
func (c *CPU) effAddr(pc uint32, in isa.Inst) (addr, size uint32, signExt bool) {
	switch in.Op {
	case isa.OpLDRReg, isa.OpSTRReg:
		return c.reg(pc, in.Rn) + c.reg(pc, in.Rm), 4, false
	case isa.OpLDRHReg, isa.OpSTRHReg:
		return c.reg(pc, in.Rn) + c.reg(pc, in.Rm), 2, false
	case isa.OpLDRBReg, isa.OpSTRBReg:
		return c.reg(pc, in.Rn) + c.reg(pc, in.Rm), 1, false
	case isa.OpLDRSB:
		return c.reg(pc, in.Rn) + c.reg(pc, in.Rm), 1, true
	case isa.OpLDRSH:
		return c.reg(pc, in.Rn) + c.reg(pc, in.Rm), 2, true
	case isa.OpLDRImm, isa.OpSTRImm:
		return c.reg(pc, in.Rn) + in.Imm, 4, false
	case isa.OpLDRBImm, isa.OpSTRBImm:
		return c.reg(pc, in.Rn) + in.Imm, 1, false
	case isa.OpLDRHImm, isa.OpSTRHImm:
		return c.reg(pc, in.Rn) + in.Imm, 2, false
	case isa.OpLDRSP, isa.OpSTRSP:
		return c.R[isa.SP] + in.Imm, 4, false
	}
	return 0, 4, false
}

// shiftReg implements register-amount shifts with their flag semantics.
func (c *CPU) shiftReg(op isa.Op, value, amount32 uint32) uint32 {
	amount := amount32 & 0xff
	v := value
	switch op {
	case isa.OpLSLReg:
		switch {
		case amount == 0:
		case amount < 32:
			c.Flags.C = v&(1<<(32-amount)) != 0
			v <<= amount
		case amount == 32:
			c.Flags.C = v&1 != 0
			v = 0
		default:
			c.Flags.C = false
			v = 0
		}
	case isa.OpLSRReg:
		switch {
		case amount == 0:
		case amount < 32:
			c.Flags.C = v&(1<<(amount-1)) != 0
			v >>= amount
		case amount == 32:
			c.Flags.C = v&0x80000000 != 0
			v = 0
		default:
			c.Flags.C = false
			v = 0
		}
	case isa.OpASRReg:
		switch {
		case amount == 0:
		case amount < 32:
			c.Flags.C = v&(1<<(amount-1)) != 0
			v = uint32(int32(v) >> amount)
		default:
			c.Flags.C = v&0x80000000 != 0
			v = uint32(int32(v) >> 31)
		}
	case isa.OpRORReg:
		if amount != 0 {
			n := amount % 32
			if n == 0 {
				c.Flags.C = v&0x80000000 != 0
			} else {
				v = v>>n | v<<(32-n)
				c.Flags.C = v&0x80000000 != 0
			}
		}
	}
	c.setNZ(v)
	return v
}
