package emu

import (
	"math/bits"

	"glitchlab/internal/isa"
)

// CPUState is a copyable snapshot of the architectural CPU state: register
// file, flags and the cycle/step counters. It is everything CPU.Reset
// initializes, so SetState(State()) round-trips a mid-run machine exactly.
// Memory is snapshotted separately (Memory.Snapshot) because it is shared
// with the board model.
type CPUState struct {
	R      [16]uint32
	Flags  isa.Flags
	Cycles uint64
	Steps  uint64
}

// State captures the architectural CPU state.
func (c *CPU) State() CPUState {
	return CPUState{R: c.R, Flags: c.Flags, Cycles: c.Cycles, Steps: c.Steps}
}

// SetState restores a previously captured state. The CPU must still be
// attached to the same Memory the state was captured against; hooks and
// decode configuration are left untouched.
func (c *CPU) SetState(s CPUState) {
	c.R = s.R
	c.Flags = s.Flags
	c.Cycles = s.Cycles
	c.Steps = s.Steps
}

// snapPageShift sets the dirty-page granularity of memory snapshots:
// 256-byte pages. Campaign RAM is 4 KiB (16 pages, one bitmap word) and
// the board's SRAM is 16 KiB (64 pages, one word), so the no-dirty-pages
// fast path of Restore is a couple of word compares.
const snapPageShift = 8

type regionSnap struct {
	region *Region
	data   []byte
}

// MemSnapshot is a restorable copy of every writable region of a Memory,
// with dirty-page tracking armed so Restore only copies back the 256-byte
// pages actually written since the snapshot (or since the last Restore).
//
// Only stores through the CPU (Memory.store) mark pages dirty; writes that
// bypass the store path — Memory.Write, direct Region.Data edits — are not
// tracked and must be undone by the caller (the campaign runner restores
// its mutated branch halfword itself for exactly this reason). At most one
// snapshot per Memory is active at a time: taking a new one rebases the
// dirty tracking onto the new copy.
type MemSnapshot struct {
	regions []regionSnap
}

// Snapshot copies every writable region and arms dirty-page tracking on
// them. Read-only regions cannot drift and are skipped.
func (m *Memory) Snapshot() *MemSnapshot {
	s := &MemSnapshot{}
	for _, r := range m.regions {
		if r.Perm&PermWrite == 0 {
			continue
		}
		cp := make([]byte, len(r.Data))
		copy(cp, r.Data)
		pages := (len(r.Data) + (1 << snapPageShift) - 1) >> snapPageShift
		r.dirty = make([]uint64, (pages+63)/64)
		s.regions = append(s.regions, regionSnap{region: r, data: cp})
	}
	return s
}

// Restore copies the snapshot back over every dirtied page and clears the
// dirty bits, leaving memory byte-identical to the moment of Snapshot.
// With nothing dirtied it touches no data at all.
func (s *MemSnapshot) Restore() {
	for _, rs := range s.regions {
		r := rs.region
		for wi, w := range r.dirty {
			if w == 0 {
				continue
			}
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				lo := (wi<<6 + b) << snapPageShift
				hi := lo + 1<<snapPageShift
				if hi > len(r.Data) {
					hi = len(r.Data)
				}
				copy(r.Data[lo:hi], rs.data[lo:hi])
			}
			r.dirty[wi] = 0
		}
	}
}
