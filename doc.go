// Package glitchlab is a from-scratch Go reproduction of "Glitching
// Demystified: Analyzing Control-flow-based Glitching Attacks and
// Defenses" (Spensky et al., DSN 2021).
//
// The library lives under internal/: an ARMv6-M Thumb emulator and
// assembler (internal/isa, internal/emu), the exhaustive bit-flip
// campaigns of Figure 2 (internal/mutate, internal/campaign), a
// cycle-accurate pipelined target with a deterministic clock-glitch
// physics model reproducing the Section V experiments (internal/pipeline,
// internal/firmware, internal/glitcher, internal/search), and
// GlitchResistor itself — a mini-C compiler with the paper's six defense
// passes emitting real Thumb firmware (internal/minic, internal/ir,
// internal/passes, internal/codegen, internal/rs, internal/lcg), tied
// together by internal/core and rendered by internal/report.
//
// The executables under cmd/ regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for reproduced-versus-published numbers.
package glitchlab

// Version identifies the reproduction release.
const Version = "1.0.0"
